package campsrv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/campaignd"
	"repro/internal/fleet"
)

// journalName is the per-campaign event log file inside <data>/<id>/ —
// the same JSONL format the single-campaign coordinator writes, so any
// campaignd tooling (and LoadJournal) reads it unchanged.
const journalName = "events.jsonl"

// indexCampaign is one campaign's durable registry entry. The spec rides
// along as raw canonical bytes: the index alone is enough to reconstruct
// every lease book, and byte-keeping the spec means resume compatibility
// stays a byte comparison end to end.
type indexCampaign struct {
	ID          string          `json:"id"`
	Seq         int             `json:"seq"`
	State       State           `json:"state"`
	Priority    int             `json:"priority"`
	MaxInflight int             `json:"maxInflight,omitempty"`
	Error       string          `json:"error,omitempty"`
	Spec        json.RawMessage `json:"spec"`
}

// indexDoc is the <data>/index.json document.
type indexDoc struct {
	NextSeq   int             `json:"nextSeq"`
	Campaigns []indexCampaign `json:"campaigns"`
}

func (s *Server) indexPath() string { return filepath.Join(s.dataDir, "index.json") }

func (s *Server) campaignDir(id string) string { return filepath.Join(s.dataDir, id) }

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.campaignDir(id), journalName)
}

// persistLocked writes the index atomically (temp file + rename), so a
// crash mid-write leaves the previous index intact rather than a torn one.
func (s *Server) persistLocked() error {
	doc := indexDoc{NextSeq: s.nextSeq}
	for _, c := range s.bySeq {
		doc.Campaigns = append(doc.Campaigns, indexCampaign{
			ID: c.id, Seq: c.seq, State: c.state,
			Priority: c.priority, MaxInflight: c.maxInflight,
			Error: c.failure, Spec: json.RawMessage(c.specJSON),
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("campsrv: marshal index: %w", err)
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campsrv: write index: %w", err)
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		return fmt.Errorf("campsrv: write index: %w", err)
	}
	return nil
}

// openJournal creates (fresh) or re-opens (resume) a campaign's event log.
// On resume the torn tail a SIGKILL mid-append can leave is truncated
// before new events append after it, the same recovery the
// single-campaign coordinator performs.
func (s *Server) openJournal(c *campaign, resume bool) (*os.File, error) {
	if err := os.MkdirAll(s.campaignDir(c.id), 0o755); err != nil {
		return nil, fmt.Errorf("campsrv: campaign dir %s: %w", c.id, err)
	}
	path := s.journalPath(c.id)
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
		}
		return f, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
	}
	keep := 0
	if idx := bytes.LastIndexByte(data, '\n'); idx >= 0 {
		keep = idx + 1
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
	}
	if keep < len(data) {
		if s.log != nil {
			s.log.Warn("journal has a torn tail line; truncating",
				"campaign", c.id, "dropped_bytes", len(data)-keep)
		}
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, fmt.Errorf("campsrv: campaign %s journal: truncate torn tail: %w", c.id, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
	}
	return f, nil
}

// resume reloads the whole data directory: the index names every campaign
// and its state; each journal supplies the completed trials. Interrupted
// campaigns (running/draining at crash time) whose journals already hold
// every result are finalised straight to done; the rest come back as live
// lease books seeded with their recovered results.
func (s *Server) resume() error {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("campsrv: %s holds no campaign state to resume (missing index.json)", s.dataDir)
		}
		return fmt.Errorf("campsrv: read index: %w", err)
	}
	var doc indexDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("campsrv: parse index: %w", err)
	}
	sort.Slice(doc.Campaigns, func(i, j int) bool { return doc.Campaigns[i].Seq < doc.Campaigns[j].Seq })

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq = doc.NextSeq
	for _, e := range doc.Campaigns {
		var spec campaignd.CampaignSpec
		if err := json.Unmarshal(e.Spec, &spec); err != nil {
			return fmt.Errorf("campsrv: campaign %s spec: %w", e.ID, err)
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("campsrv: campaign %s: %w", e.ID, err)
		}
		c := &campaign{
			id: e.ID, seq: e.Seq, state: e.State,
			priority: e.Priority, maxInflight: e.MaxInflight,
			spec: spec, specJSON: append([]byte(nil), e.Spec...),
			failure: e.Error,
		}
		if c.priority < 1 {
			c.priority = 1
		}
		if e.Seq >= s.nextSeq {
			s.nextSeq = e.Seq + 1
		}
		s.campaigns[c.id] = c
		s.bySeq = append(s.bySeq, c)

		switch e.State {
		case StateQueued, StateCancelled:
			// Nothing live to rebuild.
		case StateDone, StateRunning, StateDraining:
			if err := s.resumeCampaignLocked(c); err != nil {
				return err
			}
		default:
			return fmt.Errorf("campsrv: campaign %s has unknown state %q", e.ID, e.State)
		}
	}
	if err := s.persistLocked(); err != nil {
		return err
	}
	s.promoteLocked()
	if s.log != nil {
		s.log.Info("data directory resumed", "campaigns", len(s.bySeq),
			"running", len(s.ring), "next_seq", s.nextSeq)
	}
	return nil
}

// resumeCampaignLocked rebuilds one interrupted or completed campaign
// from its journal.
func (s *Server) resumeCampaignLocked(c *campaign) error {
	data, err := os.ReadFile(s.journalPath(c.id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) && c.state == StateRunning {
			// Crashed between the index write and the journal create:
			// nothing ran yet, start from scratch.
			c.state = StateQueued
			return nil
		}
		return fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
	}
	j, err := campaignd.LoadJournal(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("campsrv: campaign %s journal: %w", c.id, err)
	}
	if j.Lines == 0 {
		// Journal created but never written: fresh start.
		c.state = StateQueued
		return nil
	}
	if err := j.Compatible(c.spec); err != nil {
		return fmt.Errorf("campsrv: campaign %s: %w", c.id, err)
	}

	if len(j.Results) == c.spec.Trials {
		// Every trial is durably recorded: rebuild the report directly —
		// fleet.NewReport over the results in index order, the same
		// aggregation an in-process fleet.Run performs — and skip the lease
		// book entirely.
		results := make([]fleet.TrialResult, c.spec.Trials)
		for i := range results {
			res, ok := j.Results[i]
			if !ok {
				return fmt.Errorf("campsrv: campaign %s journal: trial %d missing", c.id, i)
			}
			results[i] = res
		}
		rep := fleet.NewReport(c.spec.BaseSeed, time.Duration(c.spec.MaxPerTrialNanos), results)
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return fmt.Errorf("campsrv: campaign %s report: %w", c.id, err)
		}
		c.state = StateDone
		c.report = rep
		c.reportJSON = buf.Bytes()
		if s.log != nil {
			s.log.Info("campaign report rebuilt from journal", "campaign", c.id,
				"trials", c.spec.Trials)
		}
		return nil
	}
	// Incomplete: back to a live lease book with the recovered results.
	if err := s.startLocked(c, j.Results); err != nil {
		return err
	}
	return nil
}
