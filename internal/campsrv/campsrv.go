// Package campsrv is the multi-campaign fuzzing service: a long-lived
// server that accepts campaign submissions over HTTP, runs each one as its
// own crash-tolerant campaignd lease book, and multiplexes all of them
// over one shared, campaign-agnostic worker fleet.
//
// Where PR 7's coordinator ran exactly one campaign and exited, campsrv is
// the standing "fuzzing as a service" layer the ROADMAP targets: clients
// POST a spec and get a campaign ID; workers lease (campaign, trial) pairs
// from a single endpoint; a weighted round-robin scheduler with
// per-campaign priorities and max-inflight caps decides whose trial the
// next free worker gets, so one huge campaign cannot starve small ones.
//
// Everything durable lives under one data directory:
//
//	<data>/index.json        campaign registry: id, state, priority, spec
//	<data>/<id>/events.jsonl per-campaign journal (campaignd format)
//
// The journals are the same event logs a single-campaign coordinator
// writes, so the whole directory resumes through the existing LoadJournal
// path: a restarted server rebuilds every done campaign's report from its
// journal and re-opens a lease book for every interrupted one, and the
// per-campaign determinism guarantee — final report byte-identical to an
// in-process fleet.Run — survives any SIGKILL. DESIGN §13 documents the
// scheduler, the campaign state machine and the resume protocol.
package campsrv

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/campaignd"
	"repro/internal/findings"
	"repro/internal/fleet"
	"repro/internal/observatory"
	"repro/internal/telemetry"
)

// State is a campaign's lifecycle position. Transitions:
//
//	queued ──────▶ running ──▶ draining ──▶ done
//	   │              │
//	   └──────────────┴──▶ cancelled
//
// queued: accepted, waiting for a running slot (MaxActive). running: lease
// book open, trials dispatching. draining: every trial complete, journal
// being finalised (synced and closed). done: report available, immutable.
// cancelled: withdrawn by the operator; workers with leases in flight get
// 410 on submit and move on.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDraining  State = "draining"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
)

// Request errors, mapped onto HTTP statuses by the handler.
var (
	// ErrNotFound means no campaign has the requested ID.
	ErrNotFound = errors.New("campsrv: no such campaign")
	// ErrGone means the campaign was cancelled: the resource is permanently
	// unavailable, not merely unknown.
	ErrGone = errors.New("campsrv: campaign cancelled")
	// ErrNotDone means the report was requested before the campaign
	// completed.
	ErrNotDone = errors.New("campsrv: campaign not complete")
	// ErrAlreadyDone means a cancel arrived after completion — there is
	// nothing left to withdraw.
	ErrAlreadyDone = errors.New("campsrv: campaign already complete")
	// ErrShutdown rejects new submissions while the server is draining.
	ErrShutdown = errors.New("campsrv: server shutting down")
)

// Submission is the POST /campaigns request body.
type Submission struct {
	// Spec is the complete campaign definition (required).
	Spec campaignd.CampaignSpec `json:"spec"`
	// Priority is the fair-share weight (default 1). Out of every
	// priority-sum lease grants under saturation, this campaign gets
	// Priority of them.
	Priority int `json:"priority,omitempty"`
	// MaxInflight caps the campaign's concurrently leased trials
	// (0 = unlimited) — a brake for campaigns whose worlds are expensive.
	MaxInflight int `json:"maxInflight,omitempty"`
}

// Config assembles a Server.
type Config struct {
	// DataDir is the durable root: index.json plus one journal directory
	// per campaign (required).
	DataDir string
	// Resume reloads an existing DataDir instead of initialising a fresh
	// one. Fresh start on a populated directory and resume on an empty one
	// are both hard errors: silently doing either would orphan or invent
	// campaign history.
	Resume bool
	// LeaseTTL is the worker lease deadline for every campaign (default
	// campaignd.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxActive caps concurrently running campaigns; submissions beyond it
	// queue until a slot frees (0 = unlimited).
	MaxActive int
	// Telemetry, when non-nil, receives the service metrics
	// (campaigns_active, campaigns_queued, trials_leased_total{campaign}).
	Telemetry *telemetry.Telemetry
	// Logger, when non-nil, receives lifecycle and lease-churn lines.
	Logger *slog.Logger
	// FindingsDB, when non-empty, is a findings database directory every
	// completed campaign's findings are merged into (see internal/findings
	// and cmd/canregress). Merges are idempotent, so re-running or resuming
	// campaigns never duplicates records.
	FindingsDB string
}

// campaign is the server's record of one submission, across every state.
type campaign struct {
	id          string
	seq         int
	state       State
	priority    int
	maxInflight int
	spec        campaignd.CampaignSpec
	specJSON    []byte // canonical bytes, byte-compared on resume

	// Live machinery (running/draining); nil otherwise.
	coord    *campaignd.Coordinator
	journal  *os.File
	sink     *observatory.Sink
	progress *fleet.Progress

	// Final output (done).
	report     *fleet.Report
	reportJSON []byte
	failure    string // journal finalisation error, preserved in the index

	leased *telemetry.Counter // trials_leased_total{campaign="<id>"}
}

// Server is the multi-campaign scheduler. All exported methods are safe
// for concurrent use. Lock order is Server.mu before any coordinator's
// internal mutex; coordinators never call back into the server.
type Server struct {
	dataDir string
	ttl     time.Duration
	maxAct  int
	tel     *telemetry.Telemetry
	log     *slog.Logger
	fdb     *findings.DB // nil unless Config.FindingsDB was set

	activeGauge *telemetry.Gauge
	queuedGauge *telemetry.Gauge

	mu        sync.Mutex
	campaigns map[string]*campaign
	bySeq     []*campaign // submission order, for stable listings
	ring      []*campaign // running campaigns in WRR service order
	cur       int         // ring index currently being served
	credit    int         // grants left for ring[cur] before advancing
	nextSeq   int
	shutdown  bool
}

// New builds the server, either initialising a fresh data directory or
// resuming an existing one (cfg.Resume). On resume, interrupted campaigns
// come back as live lease books seeded from their journals and completed
// ones get their reports rebuilt — both through the same LoadJournal path
// the single-campaign coordinator uses.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("campsrv: Config.DataDir is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = campaignd.DefaultLeaseTTL
	}
	s := &Server{
		dataDir:   cfg.DataDir,
		ttl:       cfg.LeaseTTL,
		maxAct:    cfg.MaxActive,
		tel:       cfg.Telemetry,
		log:       cfg.Logger,
		campaigns: map[string]*campaign{},
		nextSeq:   1,
	}
	if cfg.FindingsDB != "" {
		fdb, err := findings.Open(cfg.FindingsDB)
		if err != nil {
			return nil, fmt.Errorf("campsrv: findings db: %w", err)
		}
		s.fdb = fdb
	}
	reg := cfg.Telemetry.Reg()
	s.activeGauge = reg.Gauge("campaigns_active", "campaigns currently running (lease book open)")
	s.queuedGauge = reg.Gauge("campaigns_queued", "campaigns waiting for a running slot")
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("campsrv: data dir: %w", err)
	}
	if cfg.Resume {
		if err := s.resume(); err != nil {
			return nil, err
		}
	} else {
		if _, err := os.Stat(s.indexPath()); err == nil {
			return nil, fmt.Errorf("campsrv: %s already holds campaign state; start with Resume to continue it", cfg.DataDir)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("campsrv: data dir: %w", err)
		}
		s.mu.Lock()
		err := s.persistLocked()
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	s.syncGauges()
	return s, nil
}

// Submit registers a campaign and starts it immediately if a running slot
// is free, queueing it otherwise. The returned view carries the assigned
// campaign ID.
func (s *Server) Submit(sub Submission) (CampaignView, error) {
	if err := sub.Spec.Validate(); err != nil {
		return CampaignView{}, err
	}
	if sub.Priority == 0 {
		sub.Priority = 1
	}
	if sub.Priority < 1 {
		return CampaignView{}, fmt.Errorf("campsrv: priority must be >= 1, got %d", sub.Priority)
	}
	if sub.MaxInflight < 0 {
		return CampaignView{}, fmt.Errorf("campsrv: maxInflight must be >= 0, got %d", sub.MaxInflight)
	}
	specJSON, err := canonicalSpec(sub.Spec)
	if err != nil {
		return CampaignView{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return CampaignView{}, ErrShutdown
	}
	c := &campaign{
		id:          fmt.Sprintf("c%04d", s.nextSeq),
		seq:         s.nextSeq,
		state:       StateQueued,
		priority:    sub.Priority,
		maxInflight: sub.MaxInflight,
		spec:        sub.Spec,
		specJSON:    specJSON,
	}
	s.nextSeq++
	s.campaigns[c.id] = c
	s.bySeq = append(s.bySeq, c)
	if s.slotFreeLocked() {
		if err := s.startLocked(c, nil); err != nil {
			// The campaign cannot open its journal — refuse the submission
			// rather than park a campaign that can never run.
			delete(s.campaigns, c.id)
			s.bySeq = s.bySeq[:len(s.bySeq)-1]
			s.nextSeq--
			return CampaignView{}, err
		}
	}
	if err := s.persistLocked(); err != nil {
		return CampaignView{}, err
	}
	s.syncGaugesLocked()
	if s.log != nil {
		s.log.Info("campaign submitted", "campaign", c.id, "state", c.state,
			"target", c.spec.Target, "trials", c.spec.Trials,
			"priority", c.priority, "max_inflight", c.maxInflight)
	}
	return s.viewLocked(c), nil
}

// slotFreeLocked reports whether another campaign may enter running state.
func (s *Server) slotFreeLocked() bool {
	return s.maxAct <= 0 || len(s.ring) < s.maxAct
}

// startLocked opens the campaign's journal and lease book and enters it
// into the scheduler ring. resumed is non-nil when continuing an
// interrupted campaign from its journal.
func (s *Server) startLocked(c *campaign, resumed map[int]fleet.TrialResult) error {
	journal, err := s.openJournal(c, resumed != nil)
	if err != nil {
		return err
	}
	sink := observatory.NewSink(journal)
	progress := fleet.NewProgress()
	coord, err := campaignd.New(campaignd.Config{
		Spec:     c.spec,
		LeaseTTL: s.ttl,
		Sink:     sink,
		Progress: progress,
		Logger:   s.log,
		Resumed:  resumed,
		Seed:     c.spec.BaseSeed,
	})
	if err != nil {
		journal.Close()
		return err
	}
	c.journal, c.sink, c.progress, c.coord = journal, sink, progress, coord
	c.state = StateRunning
	c.leased = s.tel.Reg().Counter("trials_leased_total",
		"lease grants per campaign", telemetry.Label{Key: "campaign", Value: c.id})
	s.ring = append(s.ring, c)
	go func() {
		<-coord.Done()
		s.finish(c.id)
	}()
	if s.log != nil {
		s.log.Info("campaign running", "campaign", c.id, "trials", c.spec.Trials,
			"resumed", len(resumed))
	}
	return nil
}

// finish moves a completed campaign running -> draining -> done: the
// journal is synced and closed, the final report rendered, and a queued
// campaign promoted into the freed slot. It runs on the per-campaign
// watcher goroutine.
func (s *Server) finish(id string) {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil || c.state != StateRunning {
		s.mu.Unlock()
		return
	}
	c.state = StateDraining
	s.dropFromRingLocked(c)
	_ = s.persistLocked() // the draining mark is advisory; the journal is the truth
	s.mu.Unlock()

	// Finalise the journal outside the lock: sink errors are sticky, and a
	// journal that lost writes must be visible — a resume from it would
	// silently re-run trials.
	var failure string
	if err := c.sink.Close(); err != nil {
		failure = fmt.Sprintf("event log: %v", err)
	}
	if err := c.journal.Sync(); err != nil && failure == "" {
		failure = fmt.Sprintf("event log sync: %v", err)
	}
	if err := c.journal.Close(); err != nil && failure == "" {
		failure = fmt.Sprintf("event log close: %v", err)
	}
	rep := c.coord.Report()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil && failure == "" {
		failure = fmt.Sprintf("render report: %v", err)
	}
	// Completion hook: fold the campaign's findings into the regression
	// database. The DB serialises its own writes, so concurrent watcher
	// goroutines finishing at once are safe; a DB error must not lose the
	// campaign itself, so it is recorded as the failure note instead.
	if s.fdb != nil {
		if n, err := s.mergeFindings(c, rep); err != nil {
			if failure == "" {
				failure = fmt.Sprintf("findings db: %v", err)
			}
		} else if n > 0 && s.log != nil {
			s.log.Info("findings merged", "campaign", c.id, "new_records", n)
		}
	}

	s.mu.Lock()
	c.state = StateDone
	c.report = rep
	c.reportJSON = buf.Bytes()
	c.failure = failure
	c.journal = nil // finalised above; Close must not sync it again
	if err := s.persistLocked(); err != nil && s.log != nil {
		s.log.Error("index write failed", "campaign", id, "err", err)
	}
	s.promoteLocked()
	s.syncGaugesLocked()
	s.mu.Unlock()
	if s.log != nil {
		st := c.coord.Snapshot()
		s.log.Info("campaign complete", "campaign", id, "trials", st.Trials,
			"findings", rep.FoundFindings, "lease_expiries", st.Expiries,
			"duplicate_results", st.Duplicates, "failure", failure)
	}
}

// mergeFindings folds a finished campaign's replayable findings into the
// findings database, stamped with the campaign ID as provenance.
func (s *Server) mergeFindings(c *campaign, rep *fleet.Report) (int, error) {
	cfg, err := c.spec.Config.ToConfig()
	if err != nil {
		return 0, fmt.Errorf("spec config: %w", err)
	}
	mode := c.spec.Config.Mode
	if mode == "" {
		mode = "random"
	}
	recs := findings.FromFleetReport(rep, findings.ContextFromCampaignSpec(c.spec), cfg, findings.Provenance{
		Source:   "campsrv",
		Campaign: c.id,
		Mode:     mode,
	})
	return s.fdb.MergeAll(recs)
}

// promoteLocked starts queued campaigns while running slots are free:
// highest priority first, submission order among equals.
func (s *Server) promoteLocked() {
	for s.slotFreeLocked() && !s.shutdown {
		var best *campaign
		for _, c := range s.bySeq {
			if c.state != StateQueued {
				continue
			}
			if best == nil || c.priority > best.priority {
				best = c
			}
		}
		if best == nil {
			return
		}
		if err := s.startLocked(best, nil); err != nil {
			// A campaign whose journal cannot open would wedge the queue if
			// we retried it forever: cancel it and record why.
			best.state = StateCancelled
			best.failure = err.Error()
			if s.log != nil {
				s.log.Error("campaign failed to start", "campaign", best.id, "err", err)
			}
		}
		_ = s.persistLocked()
	}
}

// dropFromRingLocked removes a campaign from the scheduler ring, keeping
// the WRR cursor on the campaign it was serving.
func (s *Server) dropFromRingLocked(c *campaign) {
	for i, rc := range s.ring {
		if rc != c {
			continue
		}
		s.ring = append(s.ring[:i], s.ring[i+1:]...)
		if i < s.cur {
			s.cur--
		} else if i == s.cur {
			s.credit = 0
		}
		if len(s.ring) == 0 {
			s.cur, s.credit = 0, 0
		} else if s.cur >= len(s.ring) {
			s.cur = 0
		}
		return
	}
}

// AcquireLease is the shared fleet's single lease endpoint: weighted
// round-robin over the running campaigns. Each campaign is served up to
// priority consecutive grants before the cursor advances, so under a
// saturated fleet grants divide in exact priority proportion; a campaign
// at its max-inflight cap (or with nothing dispatchable) is skipped
// without consuming its turn.
func (s *Server) AcquireLease(worker string) campaignd.Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return campaignd.Lease{Status: campaignd.LeaseDone}
	}
	retry := time.Second // idle default: no running campaigns
	n := len(s.ring)
	for scanned := 0; scanned < n; scanned++ {
		c := s.ring[s.cur]
		if s.credit <= 0 {
			s.credit = c.priority
		}
		capped := c.maxInflight > 0 && c.coord.Leased() >= c.maxInflight
		if !capped {
			l := c.coord.AcquireLease(worker)
			switch l.Status {
			case campaignd.LeaseGranted:
				l.Campaign = c.id
				c.leased.Inc()
				s.credit--
				if s.credit <= 0 {
					s.advanceLocked()
				}
				return l
			case campaignd.LeaseWait:
				if l.RetryAfter > 0 && l.RetryAfter < retry {
					retry = l.RetryAfter
				}
			}
			// LeaseDone: the campaign drained but its watcher has not
			// finished it yet — treat as nothing dispatchable here.
		} else if wait := s.ttl / 4; wait < retry {
			// A capped campaign frees capacity at worst when a lease expires.
			retry = wait
		}
		s.advanceLocked()
	}
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	return campaignd.Lease{Status: campaignd.LeaseWait, RetryAfter: retry}
}

// advanceLocked moves the WRR cursor to the next ring slot and clears the
// current credit so the next campaign starts a fresh burst.
func (s *Server) advanceLocked() {
	s.credit = 0
	if len(s.ring) > 0 {
		s.cur = (s.cur + 1) % len(s.ring)
	} else {
		s.cur = 0
	}
}

// lookup fetches a campaign record.
func (s *Server) lookup(id string) (*campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// SpecJSON serves a campaign's canonical spec bytes to workers.
func (s *Server) SpecJSON(id string) ([]byte, error) {
	c, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if s.stateOf(c) == StateCancelled {
		return nil, fmt.Errorf("%w: %q", ErrGone, id)
	}
	return c.specJSON, nil
}

// Heartbeat extends a lease on the named campaign.
func (s *Server) Heartbeat(id string, leaseID uint64) error {
	c, err := s.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	coord, state := c.coord, c.state
	s.mu.Unlock()
	if state == StateCancelled {
		return fmt.Errorf("%w: %q", ErrGone, id)
	}
	if coord == nil {
		return campaignd.ErrLeaseGone
	}
	return coord.Heartbeat(leaseID)
}

// SubmitResult routes a worker's completed trial to its campaign's lease
// book and reports, via the ack, whether that campaign drained
// (CampaignDone) and whether the whole server is out of work (Done — only
// during shutdown; a long-lived scheduler always expects more campaigns).
func (s *Server) SubmitResult(id string, index int, leaseID uint64, res fleet.TrialResult) (campaignd.SubmitAck, error) {
	c, err := s.lookup(id)
	if err != nil {
		return campaignd.SubmitAck{}, err
	}
	s.mu.Lock()
	coord, state, shutdown := c.coord, c.state, s.shutdown
	s.mu.Unlock()
	if state == StateCancelled {
		return campaignd.SubmitAck{}, fmt.Errorf("%w: %q", ErrGone, id)
	}
	if coord == nil {
		// Resumed-as-done campaign: the trial is already in the journal.
		return campaignd.SubmitAck{Duplicate: true, CampaignDone: true, Done: shutdown}, nil
	}
	serr := coord.Submit(index, leaseID, res)
	if serr != nil && !errors.Is(serr, campaignd.ErrTrialDone) {
		return campaignd.SubmitAck{}, serr
	}
	return campaignd.SubmitAck{
		Accepted:     serr == nil,
		Duplicate:    serr != nil,
		CampaignDone: coord.Finished(),
		Done:         shutdown,
	}, nil
}

// Cancel withdraws a queued or running campaign. Cancelling a cancelled
// campaign is a no-op; a complete one is refused.
func (s *Server) Cancel(id string) (CampaignView, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return CampaignView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch c.state {
	case StateCancelled:
		v := s.viewLocked(c)
		s.mu.Unlock()
		return v, nil
	case StateDone, StateDraining:
		v := s.viewLocked(c)
		s.mu.Unlock()
		return v, fmt.Errorf("%w: %q", ErrAlreadyDone, id)
	}
	wasRunning := c.state == StateRunning
	c.state = StateCancelled
	if wasRunning {
		s.dropFromRingLocked(c)
	}
	journal, sink := c.journal, c.sink
	c.journal, c.sink = nil, nil
	if err := s.persistLocked(); err != nil {
		s.mu.Unlock()
		return CampaignView{}, err
	}
	s.promoteLocked()
	s.syncGaugesLocked()
	v := s.viewLocked(c)
	s.mu.Unlock()

	if journal != nil {
		_ = sink.Close()
		_ = journal.Sync()
		_ = journal.Close()
	}
	if s.log != nil {
		s.log.Info("campaign cancelled", "campaign", id, "was_running", wasRunning)
	}
	return v, nil
}

// BeginShutdown flips the server into draining mode: new submissions are
// refused, lease polls answer "done" so workers exit, and submit acks
// carry Done. In-flight campaign state stays durable — a later -resume
// continues exactly where the fleet left off.
func (s *Server) BeginShutdown() {
	s.mu.Lock()
	s.shutdown = true
	s.mu.Unlock()
	if s.log != nil {
		s.log.Info("shutdown begun: telling workers to exit")
	}
}

// Close persists the index and finalises every open journal. Campaigns
// still running stay in state running on disk; resume re-opens them.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	var open []*campaign
	for _, c := range s.bySeq {
		if c.journal != nil {
			open = append(open, c)
		}
	}
	err := s.persistLocked()
	s.mu.Unlock()
	for _, c := range open {
		if serr := c.sink.Close(); serr != nil && err == nil {
			err = fmt.Errorf("campaign %s event log: %w", c.id, serr)
		}
		if serr := c.journal.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("campaign %s event log: %w", c.id, serr)
		}
		if serr := c.journal.Close(); serr != nil && err == nil {
			err = fmt.Errorf("campaign %s event log: %w", c.id, serr)
		}
	}
	return err
}

// stateOf samples a campaign's state under the server lock.
func (s *Server) stateOf(c *campaign) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.state
}

// syncGauges refreshes the service gauges (also available with the lock
// held via syncGaugesLocked).
func (s *Server) syncGauges() {
	s.mu.Lock()
	s.syncGaugesLocked()
	s.mu.Unlock()
}

func (s *Server) syncGaugesLocked() {
	queued := 0
	for _, c := range s.bySeq {
		if c.state == StateQueued {
			queued++
		}
	}
	s.activeGauge.Set(float64(len(s.ring)))
	s.queuedGauge.Set(float64(queued))
}

// canonicalSpec renders the spec's canonical bytes — the same
// serialisation campaignd journals and compares on resume.
func canonicalSpec(spec campaignd.CampaignSpec) ([]byte, error) {
	b, err := spec.Canonical()
	if err != nil {
		return nil, fmt.Errorf("campsrv: marshal spec: %w", err)
	}
	return b, nil
}
