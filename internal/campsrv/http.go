package campsrv

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/campaignd"
	"repro/internal/fleet"
	"repro/internal/observatory"
	"repro/internal/telemetry"
)

// maxSubmissionBody bounds one POST /campaigns document; guided seed
// corpora are the large case and stay far under this.
const maxSubmissionBody = 8 << 20

// maxResultBody mirrors campaignd's bound on one submitted TrialResult.
const maxResultBody = 8 << 20

// HandlerConfig tunes Handler.
type HandlerConfig struct {
	// AuthToken, when non-empty, is the shared secret every request (except
	// /healthz) must present as "Authorization: Bearer <token>". This is
	// transport-level perimeter auth for a trusted network; mTLS with
	// per-client identities remains future work (DESIGN §13).
	AuthToken string
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Handler returns the campaign service API:
//
//	POST /campaigns                  submit {spec, priority, maxInflight};
//	                                 returns the campaign view with its ID
//	GET  /campaigns                  list every campaign
//	GET  /campaigns/{id}             one campaign's status
//	GET  /campaigns/{id}/report.json final report (byte-identical to the
//	                                 in-process fleet.Run report); 409
//	                                 until the campaign completes
//	GET  /campaigns/{id}/events      JSONL tail of the campaign's journal
//	POST /campaigns/{id}/cancel      withdraw a queued/running campaign
//	GET  /fleet.json                 fleet-wide aggregate of every
//	                                 campaign's progress snapshot
//
// plus the campaign-scoped worker protocol (the campaignd wire format with
// a campaign=ID query parameter):
//
//	GET  /campaignd/spec?campaign=ID
//	POST /campaignd/lease?worker=NAME          fair-share scheduled
//	POST /campaignd/heartbeat?campaign=ID&lease=N
//	POST /campaignd/result?campaign=ID&trial=N&lease=N&worker=NAME
//
// and, when a telemetry plane is configured, its routes (/metrics,
// /metrics.json, /healthz — the latter always answers without auth so
// liveness probes need no secret).
func (s *Server) Handler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var sub Submission
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmissionBody))
		if err := dec.Decode(&sub); err != nil {
			http.Error(w, fmt.Sprintf("bad submission: %v", err), http.StatusBadRequest)
			return
		}
		v, err := s.Submit(sub)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrShutdown) {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, v)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Campaigns())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		d, err := s.Detail(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, d)
	})
	mux.HandleFunc("GET /campaigns/{id}/report.json", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.ReportJSON(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(rep)
	})
	mux.HandleFunc("GET /campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		c := s.campaigns[id]
		var sink *observatory.Sink
		if c != nil {
			sink = c.sink
		}
		s.mu.Unlock()
		if c == nil {
			http.Error(w, "no such campaign", http.StatusNotFound)
			return
		}
		observatory.ServeEventsTail(w, r, sink)
	})
	mux.HandleFunc("POST /campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("GET /fleet.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Fleet())
	})

	// Worker protocol: the campaignd wire format, campaign-scoped.
	mux.HandleFunc("GET /campaignd/spec", func(w http.ResponseWriter, r *http.Request) {
		spec, err := s.SpecJSON(r.URL.Query().Get("campaign"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(spec)
	})
	mux.HandleFunc("POST /campaignd/lease", func(w http.ResponseWriter, r *http.Request) {
		l := s.AcquireLease(r.URL.Query().Get("worker"))
		writeJSON(w, campaignd.WireLease(l))
	})
	mux.HandleFunc("POST /campaignd/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		leaseID, err := strconv.ParseUint(q.Get("lease"), 10, 64)
		if err != nil {
			http.Error(w, "bad lease id", http.StatusBadRequest)
			return
		}
		if err := s.Heartbeat(q.Get("campaign"), leaseID); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /campaignd/result", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		index, err := strconv.Atoi(q.Get("trial"))
		if err != nil {
			http.Error(w, "bad trial index", http.StatusBadRequest)
			return
		}
		leaseID, _ := strconv.ParseUint(q.Get("lease"), 10, 64)
		var res fleet.TrialResult
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBody))
		if err := dec.Decode(&res); err != nil {
			http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
			return
		}
		ack, err := s.SubmitResult(q.Get("campaign"), index, leaseID, res)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, ack)
	})

	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if s.tel != nil {
		mux.Handle("/", telemetry.Handler(s.tel))
	}
	return withAuth(cfg.AuthToken, mux)
}

// withAuth enforces the shared-secret bearer token on every route except
// /healthz (liveness probes carry no secrets). Comparison is constant
// time; with no token configured the handler passes through unchanged.
func withAuth(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="canfuzzd"`)
			http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// httpError maps service errors onto HTTP statuses.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrGone), errors.Is(err, campaignd.ErrLeaseGone):
		status = http.StatusGone
	case errors.Is(err, ErrNotDone), errors.Is(err, ErrAlreadyDone):
		status = http.StatusConflict
	case errors.Is(err, campaignd.ErrBadResult):
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
