// External test package, like the campaignd suite: the trial factories
// use testbench, which imports guided, which imports fleet.
package campsrv_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/campaignd"
	"repro/internal/campsrv"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/findings"
	"repro/internal/fleet"
	"repro/internal/signal"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// unlockFactory builds the Table V bench world per trial.
func unlockFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
		core.Config{Seed: spec.Seed, TargetIDs: []can.ID{signal.IDBodyCommand}})
	if err != nil {
		return nil, err
	}
	return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
}

// buildBench is the campaign-agnostic worker runtime builder.
func buildBench(spec campaignd.CampaignSpec) (campaignd.Runtime, error) {
	return campaignd.Runtime{Factory: unlockFactory, FleetCfg: spec.FleetConfig()}, nil
}

// testSpec returns a bench campaign; distinct base seeds keep distinct
// campaigns' trial seeds — and therefore their results — distinguishable.
func testSpec(trials int, baseSeed int64) campaignd.CampaignSpec {
	return campaignd.CampaignSpec{
		Target:           "bench",
		BCMCheck:         "byte",
		Trials:           trials,
		BaseSeed:         baseSeed,
		MaxPerTrialNanos: int64(30 * time.Minute),
	}
}

// inProcessGolden runs the same campaign through fleet.Run at workers=1
// and returns its serialised report — the byte-identity reference.
func inProcessGolden(t *testing.T, spec campaignd.CampaignSpec) []byte {
	t.Helper()
	cfg := spec.FleetConfig()
	cfg.Workers = 1
	rep, err := fleet.Run(cfg, unlockFactory)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newServer(t *testing.T, cfg campsrv.Config) *campsrv.Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := campsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submit(t *testing.T, s *campsrv.Server, spec campaignd.CampaignSpec, priority, maxInflight int) string {
	t.Helper()
	v, err := s.Submit(campsrv.Submission{Spec: spec, Priority: priority, MaxInflight: maxInflight})
	if err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// runLease computes the leased trial exactly as a worker would.
func runLease(spec campaignd.CampaignSpec, l campaignd.Lease) fleet.TrialResult {
	return fleet.RunTrial(fleet.TrialSpec{Index: l.Trial, Seed: l.Seed}, spec.FleetConfig(), unlockFactory)
}

// drainAll lease-loops in-process until every campaign in specs is done,
// acting as a single synchronous worker against the server API.
func drainAll(t *testing.T, s *campsrv.Server, specs map[string]campaignd.CampaignSpec) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	remaining := len(specs)
	for remaining > 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainAll: campaigns did not finish in time")
		}
		l := s.AcquireLease("test-worker")
		switch l.Status {
		case campaignd.LeaseGranted:
			spec, ok := specs[l.Campaign]
			if !ok {
				t.Fatalf("lease for unexpected campaign %q", l.Campaign)
			}
			ack, err := s.SubmitResult(l.Campaign, l.Trial, l.ID, runLease(spec, l))
			if err != nil {
				t.Fatalf("submit %s trial %d: %v", l.Campaign, l.Trial, err)
			}
			if ack.CampaignDone {
				remaining--
			}
		case campaignd.LeaseWait:
			time.Sleep(5 * time.Millisecond)
		case campaignd.LeaseDone:
			t.Fatal("scheduler answered done with campaigns still outstanding")
		}
	}
	// The watcher goroutine finalises reports asynchronously after the last
	// ack; wait for every campaign to reach done.
	for id := range specs {
		waitState(t, s, id, campsrv.StateDone)
	}
}

func waitState(t *testing.T, s *campsrv.Server, id string, want campsrv.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		d, err := s.Detail(id)
		if err != nil {
			t.Fatal(err)
		}
		if d.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s, want %s", id, d.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func reportJSON(t *testing.T, s *campsrv.Server, id string) []byte {
	t.Helper()
	rep, err := s.ReportJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFairShareProportions saturates the scheduler with lease polls and
// asserts the weighted-round-robin grant mix: priorities 3:1 over two
// dispatchable campaigns must yield grants in exactly 3:1 proportion.
func TestFairShareProportions(t *testing.T) {
	s := newServer(t, campsrv.Config{})
	defer s.Close()
	high := submit(t, s, testSpec(40, 11), 3, 0)
	low := submit(t, s, testSpec(40, 99), 1, 0)

	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		l := s.AcquireLease("w")
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("poll %d: status %q, want granted", i, l.Status)
		}
		counts[l.Campaign]++
	}
	if counts[high] != 30 || counts[low] != 10 {
		t.Fatalf("grant mix %v, want %s=30 %s=10", counts, high, low)
	}
}

// TestMaxInflightCap: a campaign's cap bounds its concurrently leased
// trials even when it is the only dispatchable campaign.
func TestMaxInflightCap(t *testing.T) {
	s := newServer(t, campsrv.Config{})
	defer s.Close()
	submit(t, s, testSpec(10, 11), 1, 2)

	for i := 0; i < 2; i++ {
		if l := s.AcquireLease("w"); l.Status != campaignd.LeaseGranted {
			t.Fatalf("lease %d: status %q, want granted", i, l.Status)
		}
	}
	if l := s.AcquireLease("w"); l.Status != campaignd.LeaseWait {
		t.Fatalf("capped campaign still granting: status %q", l.Status)
	}
}

// TestLeaseExpiryRedispatchAcrossCampaigns: leases abandoned in two
// concurrent campaigns are both re-dispatched after their TTL, and the
// final reports are unaffected by the churn.
func TestLeaseExpiryRedispatchAcrossCampaigns(t *testing.T) {
	specA, specB := testSpec(2, 11), testSpec(2, 99)
	goldenA, goldenB := inProcessGolden(t, specA), inProcessGolden(t, specB)

	s := newServer(t, campsrv.Config{LeaseTTL: 50 * time.Millisecond})
	defer s.Close()
	idA := submit(t, s, specA, 1, 0)
	idB := submit(t, s, specB, 1, 0)

	// Lease everything and walk away: the crashed-worker scenario, twice.
	abandoned := map[string]int{}
	for i := 0; i < 4; i++ {
		l := s.AcquireLease("crashed")
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("initial lease %d: status %q", i, l.Status)
		}
		abandoned[l.Campaign]++
	}
	if abandoned[idA] != 2 || abandoned[idB] != 2 {
		t.Fatalf("abandoned lease mix %v", abandoned)
	}
	time.Sleep(120 * time.Millisecond)

	// A healthy worker must now receive every trial again, in both
	// campaigns, and carry the fleet to completion.
	drainAll(t, s, map[string]campaignd.CampaignSpec{idA: specA, idB: specB})
	if got := reportJSON(t, s, idA); !bytes.Equal(got, goldenA) {
		t.Fatalf("campaign A report differs after lease churn:\n%s\n--- golden ---\n%s", got, goldenA)
	}
	if got := reportJSON(t, s, idB); !bytes.Equal(got, goldenB) {
		t.Fatalf("campaign B report differs after lease churn:\n%s\n--- golden ---\n%s", got, goldenB)
	}
}

// TestCrossCampaignSubmission: a result computed for one campaign must not
// be acceptable to another (their per-trial seeds differ), and resubmitting
// to the right campaign is a duplicate, not a second acceptance.
func TestCrossCampaignSubmission(t *testing.T) {
	s := newServer(t, campsrv.Config{})
	defer s.Close()
	specA, specB := testSpec(3, 11), testSpec(3, 99)
	idA := submit(t, s, specA, 1, 0)
	idB := submit(t, s, specB, 1, 0)

	l := s.AcquireLease("w")
	if l.Status != campaignd.LeaseGranted || l.Campaign != idA {
		t.Fatalf("first lease: %+v, want a grant from %s", l, idA)
	}
	res := runLease(specA, l)

	other := idB
	if l.Campaign == idB {
		other = idA
	}
	if _, err := s.SubmitResult(other, l.Trial, l.ID, res); !errors.Is(err, campaignd.ErrBadResult) {
		t.Fatalf("cross-campaign submission: err %v, want ErrBadResult", err)
	}
	if _, err := s.SubmitResult("c9999", l.Trial, l.ID, res); !errors.Is(err, campsrv.ErrNotFound) {
		t.Fatalf("unknown campaign: err %v, want ErrNotFound", err)
	}

	ack, err := s.SubmitResult(idA, l.Trial, l.ID, res)
	if err != nil || !ack.Accepted {
		t.Fatalf("legitimate submission rejected: ack %+v err %v", ack, err)
	}
	dup, err := s.SubmitResult(idA, l.Trial, l.ID, res)
	if err != nil || !dup.Duplicate || dup.Accepted {
		t.Fatalf("resubmission: ack %+v err %v, want duplicate", dup, err)
	}
}

// TestThreeCampaignsSharedWorkersByteIdentical is the acceptance scenario:
// three campaigns at different priorities over four shared HTTP workers,
// every final report byte-identical to the in-process fleet.Run report.
func TestThreeCampaignsSharedWorkersByteIdentical(t *testing.T) {
	specs := []campaignd.CampaignSpec{testSpec(5, 11), testSpec(6, 22), testSpec(7, 33)}
	goldens := make([][]byte, len(specs))
	for i, spec := range specs {
		goldens[i] = inProcessGolden(t, spec)
	}

	s := newServer(t, campsrv.Config{})
	defer s.Close()
	hs := httptest.NewServer(s.Handler(campsrv.HandlerConfig{}))
	defer hs.Close()

	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = submit(t, s, spec, i+1, 0)
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, 4)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &campaignd.Worker{
				Client: &campaignd.Client{Base: hs.URL},
				Name:   string(rune('a' + i)),
				Build:  buildBench,
			}
			workerErrs[i] = w.Run(context.Background())
		}(i)
	}

	for _, id := range ids {
		waitState(t, s, id, campsrv.StateDone)
	}
	// All campaigns drained; the workers are idle-polling the scheduler —
	// the shutdown signal is what releases them.
	s.BeginShutdown()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	for i, id := range ids {
		if got := reportJSON(t, s, id); !bytes.Equal(got, goldens[i]) {
			t.Fatalf("campaign %s report differs from in-process run:\n%s\n--- golden ---\n%s",
				id, got, goldens[i])
		}
	}
}

// TestWorkerOutlivesFirstCampaign is the shutdown-semantics regression
// test: a campaign draining means "that campaign is finished", not "the
// fleet is finished" — the worker must return to the scheduler and serve
// the next campaign rather than exiting.
func TestWorkerOutlivesFirstCampaign(t *testing.T) {
	specA, specB := testSpec(3, 11), testSpec(3, 99)
	goldenA, goldenB := inProcessGolden(t, specA), inProcessGolden(t, specB)

	s := newServer(t, campsrv.Config{})
	defer s.Close()
	hs := httptest.NewServer(s.Handler(campsrv.HandlerConfig{}))
	defer hs.Close()

	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &campaignd.Worker{
			Client: &campaignd.Client{Base: hs.URL},
			Name:   "survivor",
			Build:  buildBench,
		}
		workerErr = w.Run(context.Background())
	}()

	idA := submit(t, s, specA, 1, 0)
	waitState(t, s, idA, campsrv.StateDone)

	// First campaign fully drained. The worker heard CampaignDone, not
	// Done — it must still be polling and pick up the second campaign.
	idB := submit(t, s, specB, 1, 0)
	waitState(t, s, idB, campsrv.StateDone)

	s.BeginShutdown()
	wg.Wait()
	if workerErr != nil {
		t.Fatalf("worker: %v", workerErr)
	}
	if got := reportJSON(t, s, idA); !bytes.Equal(got, goldenA) {
		t.Fatalf("first campaign report differs:\n%s\n--- golden ---\n%s", got, goldenA)
	}
	if got := reportJSON(t, s, idB); !bytes.Equal(got, goldenB) {
		t.Fatalf("second campaign report differs:\n%s\n--- golden ---\n%s", got, goldenB)
	}
}

// TestKillResumeByteIdentical: abandon the server mid-fleet (the SIGKILL
// stand-in — journals never closed, index mid-campaign), resume the data
// directory in a fresh server, finish the trials, and require every final
// report byte-identical to the in-process golden.
func TestKillResumeByteIdentical(t *testing.T) {
	specA, specB := testSpec(6, 11), testSpec(5, 99)
	goldenA, goldenB := inProcessGolden(t, specA), inProcessGolden(t, specB)
	dir := t.TempDir()

	s1 := newServer(t, campsrv.Config{DataDir: dir})
	idA := submit(t, s1, specA, 2, 0)
	idB := submit(t, s1, specB, 1, 0)
	specs := map[string]campaignd.CampaignSpec{idA: specA, idB: specB}

	// Complete five trials, then walk away without Close: journal file
	// descriptors die with the "process", exactly like SIGKILL.
	for i := 0; i < 5; i++ {
		l := s1.AcquireLease("doomed")
		if l.Status != campaignd.LeaseGranted {
			t.Fatalf("lease %d before kill: status %q", i, l.Status)
		}
		if _, err := s1.SubmitResult(l.Campaign, l.Trial, l.ID, runLease(specs[l.Campaign], l)); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newServer(t, campsrv.Config{DataDir: dir, Resume: true})
	defer s2.Close()
	drainAll(t, s2, specs)
	if got := reportJSON(t, s2, idA); !bytes.Equal(got, goldenA) {
		t.Fatalf("campaign A report differs after resume:\n%s\n--- golden ---\n%s", got, goldenA)
	}
	if got := reportJSON(t, s2, idB); !bytes.Equal(got, goldenB) {
		t.Fatalf("campaign B report differs after resume:\n%s\n--- golden ---\n%s", got, goldenB)
	}

	// Completed campaigns must survive a further resume: the report is
	// rebuilt from the journal alone, byte-identical again.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := newServer(t, campsrv.Config{DataDir: dir, Resume: true})
	defer s3.Close()
	if got := reportJSON(t, s3, idA); !bytes.Equal(got, goldenA) {
		t.Fatalf("campaign A report differs after second resume:\n%s\n--- golden ---\n%s", got, goldenA)
	}
	if got := reportJSON(t, s3, idB); !bytes.Equal(got, goldenB) {
		t.Fatalf("campaign B report differs after second resume:\n%s\n--- golden ---\n%s", got, goldenB)
	}
}

// TestQueuePromotionByPriority: with one running slot, the highest
// priority queued campaign is promoted first regardless of arrival order.
func TestQueuePromotionByPriority(t *testing.T) {
	s := newServer(t, campsrv.Config{MaxActive: 1})
	defer s.Close()
	specA := testSpec(1, 11)
	idA := submit(t, s, specA, 1, 0)
	idLow := submit(t, s, testSpec(1, 22), 1, 0)
	idHigh := submit(t, s, testSpec(1, 33), 5, 0)

	for _, id := range []string{idLow, idHigh} {
		if d, _ := s.Detail(id); d.State != campsrv.StateQueued {
			t.Fatalf("campaign %s: state %s, want queued", id, d.State)
		}
	}

	drainAll(t, s, map[string]campaignd.CampaignSpec{idA: specA})
	waitState(t, s, idA, campsrv.StateDone)
	if d, _ := s.Detail(idHigh); d.State != campsrv.StateRunning {
		t.Fatalf("high-priority campaign: state %s, want running after slot freed", d.State)
	}
	if d, _ := s.Detail(idLow); d.State != campsrv.StateQueued {
		t.Fatalf("low-priority campaign: state %s, want still queued", d.State)
	}
}

// TestCancel: cancelled campaigns leave the schedule, answer Gone, and
// free their slot for the queue.
func TestCancel(t *testing.T) {
	s := newServer(t, campsrv.Config{MaxActive: 1})
	defer s.Close()
	idA := submit(t, s, testSpec(4, 11), 1, 0)
	idB := submit(t, s, testSpec(4, 22), 1, 0)

	if v, err := s.Cancel(idA); err != nil || v.State != campsrv.StateCancelled {
		t.Fatalf("cancel running: %+v err %v", v, err)
	}
	waitState(t, s, idB, campsrv.StateRunning)
	if _, err := s.ReportJSON(idA); !errors.Is(err, campsrv.ErrGone) {
		t.Fatalf("cancelled report: err %v, want ErrGone", err)
	}
	if _, err := s.SubmitResult(idA, 0, 1, fleet.TrialResult{}); !errors.Is(err, campsrv.ErrGone) {
		t.Fatalf("submission to cancelled campaign: err %v, want ErrGone", err)
	}
}

// TestFreshStartRefusesPopulatedDir and resume-without-state: silently
// reusing or inventing campaign history are both hard errors.
func TestDataDirStateMismatch(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, campsrv.Config{DataDir: dir})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := campsrv.New(campsrv.Config{DataDir: dir}); err == nil {
		t.Fatal("fresh start on a populated data directory must fail")
	}
	if _, err := campsrv.New(campsrv.Config{DataDir: t.TempDir(), Resume: true}); err == nil {
		t.Fatal("resume on an empty data directory must fail")
	}
}

// TestFindingsDBCompletionHook: with Config.FindingsDB set, every finished
// campaign's replayable findings land in the database, stamped with the
// campaign ID; a second identical campaign only adds provenance, never
// duplicate records.
func TestFindingsDBCompletionHook(t *testing.T) {
	fdir := t.TempDir()
	s := newServer(t, campsrv.Config{FindingsDB: fdir})
	defer s.Close()
	spec := testSpec(2, 7)
	id := submit(t, s, spec, 1, 0)
	drainAll(t, s, map[string]campaignd.CampaignSpec{id: spec})

	db, err := findings.Open(fdir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("completed campaign merged no findings")
	}
	for _, rec := range recs {
		if rec.Target != "bench" || rec.Oracle == "" {
			t.Fatalf("malformed record: %+v", rec)
		}
		found := false
		for _, c := range rec.Campaigns {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %s lacks campaign provenance %q: %v", rec.Key(), id, rec.Campaigns)
		}
	}

	// Rerun the same campaign: dedupe means the record count is unchanged.
	id2 := submit(t, s, spec, 1, 0)
	drainAll(t, s, map[string]campaignd.CampaignSpec{id2: spec})
	recs2, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("identical campaign changed record count: %d -> %d", len(recs), len(recs2))
	}
}

// TestBearerAuth: with a token configured every campaign API route demands
// it; /healthz stays open for liveness probes.
func TestBearerAuth(t *testing.T) {
	s := newServer(t, campsrv.Config{Telemetry: telemetry.New(0)})
	defer s.Close()
	hs := httptest.NewServer(s.Handler(campsrv.HandlerConfig{AuthToken: "s3cret"}))
	defer hs.Close()

	get := func(path, token string) int {
		req, err := http.NewRequest(http.MethodGet, hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/fleet.json", ""); got != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", got)
	}
	if got := get("/fleet.json", "wrong"); got != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", got)
	}
	if got := get("/campaigns", ""); got != http.StatusUnauthorized {
		t.Fatalf("campaign list without token: status %d, want 401", got)
	}
	if got := get("/fleet.json", "s3cret"); got != http.StatusOK {
		t.Fatalf("valid token: status %d, want 200", got)
	}
	if got := get("/healthz", ""); got != http.StatusOK {
		t.Fatalf("healthz must stay tokenless: status %d, want 200", got)
	}
}

// TestWorkerTokenRoundTrip: the campaignd client attaches the bearer token
// so authenticated fleets work end to end.
func TestWorkerTokenRoundTrip(t *testing.T) {
	spec := testSpec(3, 11)
	golden := inProcessGolden(t, spec)

	s := newServer(t, campsrv.Config{})
	defer s.Close()
	hs := httptest.NewServer(s.Handler(campsrv.HandlerConfig{AuthToken: "s3cret"}))
	defer hs.Close()
	id := submit(t, s, spec, 1, 0)

	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &campaignd.Worker{
			Client: &campaignd.Client{Base: hs.URL, Token: "s3cret"},
			Name:   "authed",
			Build:  buildBench,
		}
		workerErr = w.Run(context.Background())
	}()
	waitState(t, s, id, campsrv.StateDone)
	s.BeginShutdown()
	wg.Wait()
	if workerErr != nil {
		t.Fatalf("worker: %v", workerErr)
	}
	if got := reportJSON(t, s, id); !bytes.Equal(got, golden) {
		t.Fatalf("authenticated campaign report differs:\n%s\n--- golden ---\n%s", got, golden)
	}
}
