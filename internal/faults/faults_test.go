package faults

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
)

func TestParsePlanFull(t *testing.T) {
	p, err := ParsePlan("seed=42; corrupt(p=0.5,at=2s,for=50ms); babble(id=005,at=2s,for=1s,every=500us); " +
		"stall(ecu=cluster,at=3s,for=500ms); jam(at=4s,for=10ms); panic(ecu=cluster,at=6s,detail=oops); " +
		"detach(port=fuzzer,at=5s,for=1s); drop(p=0.05); dup(p=0.01)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d", p.Seed)
	}
	want := []Spec{
		{Kind: KindCorrupt, Prob: 0.5, At: 2 * time.Second, For: 50 * time.Millisecond},
		{Kind: KindBabble, ID: 0x005, At: 2 * time.Second, For: time.Second, Every: 500 * time.Microsecond},
		{Kind: KindStall, Target: "cluster", At: 3 * time.Second, For: 500 * time.Millisecond},
		{Kind: KindJam, At: 4 * time.Second, For: 10 * time.Millisecond},
		{Kind: KindPanic, Target: "cluster", At: 6 * time.Second, Detail: "oops"},
		{Kind: KindDetach, Target: "fuzzer", At: 5 * time.Second, For: time.Second},
		{Kind: KindDrop, Prob: 0.05},
		{Kind: KindDup, Prob: 0.01},
	}
	if !reflect.DeepEqual(p.Specs, want) {
		t.Fatalf("specs = %+v\nwant    %+v", p.Specs, want)
	}
	kinds := p.Kinds()
	if len(kinds) != 8 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"seed=7",                // no fault clauses
		"meltdown(at=1s)",       // unknown kind
		"corrupt(at=1s",         // unbalanced
		"corrupt(wat=1)",        // unknown key
		"corrupt(p=banana)",     // bad number
		"babble(id=FFFF)",       // identifier out of range
		"corrupt(p 1)",          // not key=value
		"seed=banana;corrupt()", // bad seed
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", bad)
		}
	}
}

func TestStartValidatesTargets(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	inj := New(s, Plan{Specs: []Spec{{Kind: KindStall, Target: "ghost", For: time.Millisecond}}})
	inj.AttachBus(b)
	if err := inj.Start(); err == nil {
		t.Fatal("Start accepted a stall on an unattached ECU")
	}
	inj2 := New(s, Plan{Specs: []Spec{{Kind: KindCorrupt}}})
	if err := inj2.Start(); err == nil {
		t.Fatal("Start accepted a wire fault without a bus")
	}
}

// chaosRig is a two-node bus with a periodic sender, for wire-fault tests.
// The returned func reports how many frames the receiver saw.
func chaosRig(t *testing.T) (*clock.Scheduler, *bus.Bus, *bus.Port, func() int) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	tx := b.Connect("tx")
	rx := b.Connect("rx")
	received := 0
	rx.SetReceiver(func(bus.Message) { received++ })
	s.Every(time.Millisecond, func() {
		_ = tx.Send(can.MustNew(0x100, []byte{1}))
	})
	return s, b, tx, func() int { return received }
}

func TestCorruptWindowDrivesErrorCounters(t *testing.T) {
	s, b, tx, _ := chaosRig(t)
	inj := New(s, Plan{Seed: 1, Specs: []Spec{
		{Kind: KindCorrupt, Prob: 1, At: 10 * time.Millisecond, For: 20 * time.Millisecond},
	}})
	inj.AttachBus(b)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(50 * time.Millisecond)
	if tec, _ := tx.ErrorCounters(); tec == 0 {
		t.Fatal("corrupt window did not raise the transmitter's TEC")
	}
	if got := inj.Counts()[string(KindCorrupt)]; got == 0 {
		t.Fatal("no corrupt injections counted")
	}
	// Outside the window traffic flows clean again and TEC heals.
	s.RunUntil(400 * time.Millisecond)
	if tec, _ := tx.ErrorCounters(); tec != 0 {
		t.Fatalf("TEC = %d after the window, want healed to 0", tec)
	}
}

func TestDropAndDupProbabilistic(t *testing.T) {
	s, b, _, received := chaosRig(t)
	inj := New(s, Plan{Seed: 9, Specs: []Spec{
		{Kind: KindDrop, Prob: 0.5, At: 0},
	}})
	inj.AttachBus(b)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	dropped := inj.Counts()[string(KindDrop)]
	if dropped == 0 {
		t.Fatal("p=0.5 drop window dropped nothing")
	}
	// ~1000 frames at p=0.5: both outcomes must occur.
	if got := received(); got == 0 || uint64(got)+dropped < 990 {
		t.Fatalf("received=%d dropped=%d; want them to partition ~1000 sends", got, dropped)
	}
	if st := b.Stats(); st.FramesDropped != dropped {
		t.Fatalf("bus dropped stat %d != injector count %d", st.FramesDropped, dropped)
	}
}

func TestBabbleStarvesLowPriorityTraffic(t *testing.T) {
	s, b, tx, _ := chaosRig(t)
	inj := New(s, Plan{Seed: 3, Specs: []Spec{
		{Kind: KindBabble, ID: 0x005, At: 100 * time.Millisecond, For: 200 * time.Millisecond, Every: 100 * time.Microsecond},
	}})
	inj.AttachBus(b)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(500 * time.Millisecond)
	if inj.Counts()[string(KindBabble)] == 0 {
		t.Fatal("babble node sent nothing")
	}
	if tx.Stats().ArbLosses == 0 {
		t.Fatal("babbling idiot at id 005 never beat the 0x100 sender in arbitration")
	}
	// The flood ends with the window: no further babble sends afterwards.
	floodTotal := inj.Counts()[string(KindBabble)]
	s.RunUntil(time.Second)
	if got := inj.Counts()[string(KindBabble)]; got != floodTotal {
		t.Fatalf("babble kept sending after its window: %d -> %d", floodTotal, got)
	}
	if b.WindowLoad() > 0.5 {
		t.Fatalf("bus load %v long after the babble window, want drained", b.WindowLoad())
	}
}

func TestStallPanicDetachLifecycle(t *testing.T) {
	s := clock.New()
	b := bus.New(s)
	dutPort := b.Connect("dut")
	dut := ecu.New("dut", s, dutPort)
	handled := 0
	dut.Handle(0x100, func(bus.Message) { handled++ })
	peer := b.Connect("peer")
	s.Every(time.Millisecond, func() { _ = peer.Send(can.MustNew(0x100, nil)) })

	inj := New(s, Plan{Seed: 5, Specs: []Spec{
		{Kind: KindStall, Target: "dut", At: 10 * time.Millisecond, For: 20 * time.Millisecond},
		{Kind: KindDetach, Target: "peer2", At: 40 * time.Millisecond, For: 20 * time.Millisecond},
		{Kind: KindPanic, Target: "dut", At: 80 * time.Millisecond, Detail: "chaos"},
	}})
	inj.AttachBus(b)
	inj.AttachECU("dut", dut)
	peer2 := b.Connect("peer2")
	inj.AttachPort("peer2", peer2)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}

	s.RunUntil(15 * time.Millisecond)
	if !dut.Stalled() {
		t.Fatal("ECU not stalled inside the stall window")
	}
	s.RunUntil(45 * time.Millisecond)
	if dut.Stalled() {
		t.Fatal("ECU still stalled after the stall window")
	}
	if err := peer2.Send(can.MustNew(0x1, nil)); err == nil {
		t.Fatal("detached port accepted a send")
	}
	s.RunUntil(70 * time.Millisecond)
	if err := peer2.Send(can.MustNew(0x1, nil)); err != nil {
		t.Fatalf("reattached port rejects sends: %v", err)
	}
	s.RunUntil(100 * time.Millisecond)
	if !dut.Crashed() || dut.CrashDetail() != "chaos" {
		t.Fatalf("crashed=%v detail=%q after injected panic", dut.Crashed(), dut.CrashDetail())
	}
	counts := inj.Counts()
	for _, k := range []Kind{KindStall, KindDetach, KindPanic} {
		if counts[string(k)] != 1 {
			t.Fatalf("counts[%s] = %d, want 1 (all: %v)", k, counts[string(k)], counts)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	run := func() (map[string]uint64, int) {
		s, b, _, received := chaosRig(t)
		inj := New(s, Plan{Seed: 77, Specs: []Spec{
			{Kind: KindDrop, Prob: 0.3},
			{Kind: KindDup, Prob: 0.2},
			{Kind: KindCorrupt, Prob: 0.05, At: 100 * time.Millisecond, For: 300 * time.Millisecond},
		}})
		inj.AttachBus(b)
		if err := inj.Start(); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(time.Second)
		return inj.Counts(), received()
	}
	c1, r1 := run()
	c2, r2 := run()
	if !reflect.DeepEqual(c1, c2) || r1 != r2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", c1, r1, c2, r2)
	}
	if c1[string(KindDrop)] == 0 || c1[string(KindDup)] == 0 || c1[string(KindCorrupt)] == 0 {
		t.Fatalf("not all wire faults fired: %v", c1)
	}
}

func TestIndependentStreams(t *testing.T) {
	// Removing one spec must not change another spec's decisions: the drop
	// stream is derived from (seed, index)... but index shifts if an earlier
	// spec is removed, so independence is defined as: the same spec list
	// prefix keeps identical streams when later specs are appended.
	run := func(extraDup bool) uint64 {
		s, b, _, _ := chaosRig(t)
		specs := []Spec{{Kind: KindDrop, Prob: 0.3}}
		if extraDup {
			specs = append(specs, Spec{Kind: KindDup, Prob: 0.2})
		}
		inj := New(s, Plan{Seed: 123, Specs: specs})
		inj.AttachBus(b)
		if err := inj.Start(); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(time.Second)
		return inj.Counts()[string(KindDrop)]
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("appending a dup spec changed the drop stream: %d vs %d", a, b)
	}
}

func TestStopDisarmsPendingFaults(t *testing.T) {
	s, b, _, received := chaosRig(t)
	inj := New(s, Plan{Seed: 2, Specs: []Spec{
		{Kind: KindDrop, Prob: 1, At: 0},
		{Kind: KindJam, At: 500 * time.Millisecond},
	}})
	inj.AttachBus(b)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100 * time.Millisecond)
	inj.Stop()
	before := inj.Counts()[string(KindDrop)]
	s.RunUntil(time.Second)
	if got := inj.Counts()[string(KindDrop)]; got != before {
		t.Fatalf("drops continued after Stop: %d -> %d", before, got)
	}
	if received() == 0 {
		t.Fatal("no frames delivered after Stop removed the interceptor")
	}
	if inj.Counts()[string(KindJam)] != 0 {
		t.Fatal("disarmed jam still fired")
	}
}
