package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/can"
)

// Plan DSL — the textual form behind `canfuzz -chaos`. A plan is a list of
// `;`-separated clauses; each clause is either `seed=N` or a fault call
// `kind(key=value,...)`:
//
//	seed=42;
//	corrupt(p=1,at=2s,for=50ms);
//	drop(p=0.05,at=0s);
//	dup(p=0.01);
//	babble(id=005,at=2s,for=1s,every=500us);
//	jam(at=4s,for=10ms);
//	stall(ecu=cluster,at=3s,for=500ms);
//	panic(ecu=cluster,at=6s,detail=injected);
//	detach(port=fuzzer,at=5s,for=1s)
//
// Durations use Go syntax (`50ms`, `2s`, `500us`); identifiers are hex;
// probabilities are decimals in (0,1]. Whitespace is ignored everywhere.

// ParsePlan parses the -chaos plan syntax.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return p, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		spec, err := parseClause(clause)
		if err != nil {
			return p, err
		}
		p.Specs = append(p.Specs, spec)
	}
	if len(p.Specs) == 0 {
		return p, fmt.Errorf("faults: plan %q has no fault clauses", s)
	}
	return p, nil
}

// parseClause parses one `kind(key=value,...)` call.
func parseClause(clause string) (Spec, error) {
	var s Spec
	open := strings.IndexByte(clause, '(')
	if open < 1 || !strings.HasSuffix(clause, ")") {
		return s, fmt.Errorf("faults: clause %q is not kind(key=value,...)", clause)
	}
	kind := Kind(strings.TrimSpace(clause[:open]))
	switch kind {
	case KindCorrupt, KindDrop, KindDup, KindBabble, KindJam, KindStall, KindPanic, KindDetach:
		s.Kind = kind
	default:
		return s, fmt.Errorf("faults: unknown fault kind %q", kind)
	}
	body := clause[open+1 : len(clause)-1]
	if strings.TrimSpace(body) == "" {
		return s, nil
	}
	for _, kv := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return s, fmt.Errorf("faults: parameter %q in %q is not key=value", kv, clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "at":
			s.At, err = time.ParseDuration(val)
		case "for":
			s.For, err = time.ParseDuration(val)
		case "every":
			s.Every, err = time.ParseDuration(val)
		case "p", "prob":
			s.Prob, err = strconv.ParseFloat(val, 64)
		case "id":
			var id uint64
			id, err = strconv.ParseUint(val, 16, 32)
			if err == nil && id > uint64(can.MaxID) {
				err = fmt.Errorf("identifier %03X above max %03X", id, uint64(can.MaxID))
			}
			s.ID = can.ID(id)
		case "ecu", "port", "target":
			s.Target = val
		case "detail":
			s.Detail = val
		default:
			return s, fmt.Errorf("faults: unknown parameter %q in %q", key, clause)
		}
		if err != nil {
			return s, fmt.Errorf("faults: bad %s in %q: %v", key, clause, err)
		}
	}
	return s, nil
}
