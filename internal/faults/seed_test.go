package faults

import "testing"

// TestSplitMix64Pinned pins the mixer against the reference stream of
// Steele et al.'s splitmix64 (SplitMix64(0) is the well-known first output
// 0xE220A8397B1DCDAF). These constants are load-bearing: fleet trial seeds
// and fault-plan streams are derived from them, so changing the mixer
// silently changes every "reproducible" result in the repo.
func TestSplitMix64Pinned(t *testing.T) {
	cases := []struct {
		in, want uint64
	}{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
		{2, 0x975835de1c9756ce},
		{0x9e3779b97f4a7c15, 0x6e789e6aa1b965f4},
		{^uint64(0), 0xe4d971771b652c20},
	}
	for _, c := range cases {
		if got := SplitMix64(c.in); got != c.want {
			t.Errorf("SplitMix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestDeriveSeedPinned pins the per-stream seed family.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		base int64
		i    int
		want int64
	}{
		{0, 0, 6791897765849424158},
		{1, 0, -1586005623519383010},
		{1, 1, -2274933249722822011},
		{1, 2, -1419658703116693069},
		{42, 7, -3960308633437393799},
		{-1, 3, 8962554365876074115},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.i); got != c.want {
			t.Errorf("DeriveSeed(%d, %d) = %d, want %d", c.base, c.i, got, c.want)
		}
	}
}

// TestDeriveSeedIndependence checks the decorrelation properties the
// derivation exists for: distinct (base, i) pairs in a dense neighbourhood
// collide on neither seeds nor low bits.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for base := int64(0); base < 16; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d: %d", base, i, s)
			}
			seen[s] = true
		}
	}
}

// TestDeriveRNGMatchesSeed ensures DeriveRNG is exactly rand over
// DeriveSeed, so callers may use either interchangeably.
func TestDeriveRNGMatchesSeed(t *testing.T) {
	a := DeriveRNG(9, 4)
	b := DeriveRNG(9, 4)
	for k := 0; k < 8; k++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("stream diverged at draw %d: %d vs %d", k, x, y)
		}
	}
}
