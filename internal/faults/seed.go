package faults

import "math/rand"

// Seed derivation. Fault plans, and now fleet campaigns, need families of
// statistically independent RNG streams that are (a) reproducible from one
// base seed and (b) stable under composition: adding stream i+1 must not
// perturb stream i, and nearby base seeds must not produce correlated
// streams. SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
// Generators" — the same finalising mixer Go's runtime uses) gives both:
// it is a bijective avalanche hash, so consecutive inputs map to
// decorrelated outputs.

// SplitMix64 applies the splitmix64 finalising mix to x.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed returns stream i of the base seed's seed family:
// SplitMix64(base XOR SplitMix64(i+1)), reinterpreted as int64. It is the
// derivation the injector uses for per-spec fault streams and the fleet
// uses for per-trial campaign seeds; i and base are mixed independently so
// neither sequential trial indices nor sequential base seeds yield
// correlated streams.
func DeriveSeed(base int64, i int) int64 {
	return int64(SplitMix64(uint64(base) ^ SplitMix64(uint64(i)+1)))
}

// DeriveRNG returns a rand.Rand over DeriveSeed(base, i).
func DeriveRNG(base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, i)))
}
