// Package faults is the deterministic fault-injection subsystem: a seeded,
// virtual-clock-scheduled injector that composes independent fault plans
// against the simulated vehicle — wire-level corruption, frame loss and
// duplication, a babbling-idiot node flooding a high-priority identifier,
// stuck-dominant bus windows, ECU handler stalls and panics, and port
// detach/reattach cycles.
//
// The paper's §VI findings (the bricked instrument cluster, erratic RPM)
// were *discovered* faults; this package makes them *reproducible* faults:
// every spec draws from its own splitmix-derived RNG stream, so a plan's
// seed fixes the entire fault schedule bit-for-bit and composing or
// removing one spec never perturbs the others.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/telemetry"
)

// Kind names a fault class.
type Kind string

// Fault kinds.
const (
	// KindCorrupt destroys frames on the wire (CRC-detectable; drives the
	// CAN error-confinement machinery toward bus-off).
	KindCorrupt Kind = "corrupt"
	// KindDrop loses frames silently after acknowledgement.
	KindDrop Kind = "drop"
	// KindDup delivers frames twice.
	KindDup Kind = "dup"
	// KindBabble attaches a babbling-idiot node flooding one identifier.
	KindBabble Kind = "babble"
	// KindJam holds the bus dominant (stuck-dominant transceiver).
	KindJam Kind = "jam"
	// KindStall wedges a target ECU's application for a window.
	KindStall Kind = "stall"
	// KindPanic arms a panic in a target ECU's next frame dispatch.
	KindPanic Kind = "panic"
	// KindDetach disconnects a target port, reattaching after the window.
	KindDetach Kind = "detach"
)

// Spec is one fault in a plan.
type Spec struct {
	// Kind selects the fault class.
	Kind Kind
	// At is when the fault (or its window) begins, measured from the
	// instant the injector is started.
	At time.Duration
	// For is the window length for windowed faults (corrupt/drop/dup,
	// babble, jam, stall, detach). Zero means: open-ended for wire faults
	// and babble, instantaneous-default for jam (JamDefault), and
	// permanent for detach.
	For time.Duration
	// Prob is the per-frame application probability for wire faults,
	// in (0,1]; zero means 1 (every frame in the window).
	Prob float64
	// ID is the babbling-idiot arbitration identifier.
	ID can.ID
	// Every is the babbling-idiot transmit period; zero means BabblePeriod.
	Every time.Duration
	// Target names the ECU (stall/panic) or port (detach) under fault.
	Target string
	// Detail is the panic message for KindPanic.
	Detail string
}

// Plan is a seeded, composable fault schedule.
type Plan struct {
	// Seed fixes every per-spec RNG stream.
	Seed int64
	// Specs lists the faults; order is part of the plan identity (it
	// derives each spec's stream and breaks wire-fault ties).
	Specs []Spec
}

// Defaults for under-specified specs.
const (
	// BabblePeriod is the default flood period: one frame per 500 µs is
	// twice the paper's maximum fuzzer rate, enough to starve arbitration.
	BabblePeriod = 500 * time.Microsecond
	// JamDefault is the default stuck-dominant window.
	JamDefault = 10 * time.Millisecond
)

// specRNG returns the independent RNG stream for spec index i of a plan
// (see seed.go for the derivation).
func specRNG(seed int64, i int) *rand.Rand {
	return DeriveRNG(seed, i)
}

// wireFault is an armed wire-level spec.
type wireFault struct {
	spec   Spec
	action bus.TxAction
	rng    *rand.Rand
}

// active reports whether the window covers now.
func (w *wireFault) active(now time.Duration) bool {
	if now < w.spec.At {
		return false
	}
	return w.spec.For <= 0 || now < w.spec.At+w.spec.For
}

// Injector executes a Plan against an attached bus, ECUs and ports.
// Create with New, attach targets, then Start. All scheduling runs on the
// virtual clock, so identical plans replay identically.
type Injector struct {
	sched *clock.Scheduler
	plan  Plan

	bus        *bus.Bus
	ecus       map[string]*ecu.ECU
	ports      map[string]*bus.Port
	babblePort *bus.Port

	wire    []*wireFault
	timers  []*clock.Timer
	running bool

	counts map[string]uint64

	// Telemetry handles; nil (no-op) until Instrument is called.
	tel   *telemetry.Telemetry
	mKind map[Kind]*telemetry.Counter
}

// New creates an injector for a plan on the given scheduler.
func New(sched *clock.Scheduler, plan Plan) *Injector {
	if sched == nil {
		panic("faults: nil scheduler")
	}
	return &Injector{
		sched:  sched,
		plan:   plan,
		ecus:   make(map[string]*ecu.ECU),
		ports:  make(map[string]*bus.Port),
		counts: make(map[string]uint64),
	}
}

// Plan returns the injector's fault plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// AttachBus binds the injector to the bus carrying wire, babble and jam
// faults.
func (inj *Injector) AttachBus(b *bus.Bus) { inj.bus = b }

// AttachECU registers a stall/panic target by name.
func (inj *Injector) AttachECU(name string, e *ecu.ECU) { inj.ecus[name] = e }

// AttachPort registers a detach target by name.
func (inj *Injector) AttachPort(name string, p *bus.Port) { inj.ports[name] = p }

// Instrument attaches the injector to the telemetry plane: a
// faults_injected_total counter per kind in the plan plus an EvFault trace
// event per discrete injection. Nil is a no-op.
func (inj *Injector) Instrument(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	inj.tel = t
	inj.mKind = make(map[Kind]*telemetry.Counter)
	for _, s := range inj.plan.Specs {
		if _, ok := inj.mKind[s.Kind]; ok {
			continue
		}
		inj.mKind[s.Kind] = t.Registry.Counter("faults_injected_total",
			"Faults injected, by kind.", telemetry.Label{Key: "kind", Value: string(s.Kind)})
	}
}

// Counts returns a copy of the injected-fault counts by kind. Pass this
// (as a method value) to core.WithFaultCounts to embed the counts in the
// campaign report.
func (inj *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// note accounts one injection.
func (inj *Injector) note(k Kind, detail string, trace bool) {
	inj.counts[string(k)]++
	inj.mKind[k].Inc()
	if trace && inj.tel != nil {
		inj.tel.Emit(telemetry.Event{
			At: inj.sched.Now(), Kind: telemetry.EvFault,
			Actor: "faults", Name: string(k), Detail: detail,
		})
	}
}

// validate checks that every spec's target is attached and parameters make
// sense, so a bad plan fails at Start instead of mid-campaign.
func (inj *Injector) validate() error {
	for i, s := range inj.plan.Specs {
		switch s.Kind {
		case KindCorrupt, KindDrop, KindDup, KindBabble, KindJam:
			if inj.bus == nil {
				return fmt.Errorf("faults: spec %d (%s) needs AttachBus", i, s.Kind)
			}
		case KindStall, KindPanic:
			if _, ok := inj.ecus[s.Target]; !ok {
				return fmt.Errorf("faults: spec %d (%s) targets unattached ECU %q", i, s.Kind, s.Target)
			}
		case KindDetach:
			if _, ok := inj.ports[s.Target]; !ok {
				return fmt.Errorf("faults: spec %d (%s) targets unattached port %q", i, s.Kind, s.Target)
			}
		default:
			return fmt.Errorf("faults: spec %d has unknown kind %q", i, s.Kind)
		}
		if s.Prob < 0 || s.Prob > 1 {
			return fmt.Errorf("faults: spec %d probability %v outside [0,1]", i, s.Prob)
		}
		if s.At < 0 {
			return fmt.Errorf("faults: spec %d start %v is negative", i, s.At)
		}
	}
	return nil
}

// Start arms the plan. Spec times are relative to the Start instant, so a
// plan written as "at=100ms" fires 100 ms into the chaos run even when the
// system under test already consumed virtual time warming up. Wire-fault
// specs install the injector as the bus interceptor for the run.
func (inj *Injector) Start() error {
	if inj.running {
		return nil
	}
	if err := inj.validate(); err != nil {
		return err
	}
	inj.running = true
	base := inj.sched.Now()
	for i, s := range inj.plan.Specs {
		s.At += base
		switch s.Kind {
		case KindCorrupt, KindDrop, KindDup:
			wf := &wireFault{spec: s, rng: specRNG(inj.plan.Seed, i)}
			switch s.Kind {
			case KindCorrupt:
				wf.action = bus.TxCorrupt
			case KindDrop:
				wf.action = bus.TxDrop
			default:
				wf.action = bus.TxDuplicate
			}
			inj.wire = append(inj.wire, wf)
			inj.traceWindow(s)
		case KindBabble:
			inj.armBabble(s)
		case KindJam:
			spec := s
			inj.at(spec.At, func() {
				d := spec.For
				if d <= 0 {
					d = JamDefault
				}
				inj.bus.Jam(d)
				inj.note(KindJam, fmt.Sprintf("stuck-dominant for %v", d), true)
			})
		case KindStall:
			spec := s
			target := inj.ecus[spec.Target]
			inj.at(spec.At, func() {
				target.InjectStall(spec.For)
				inj.note(KindStall, fmt.Sprintf("%s for %v", spec.Target, spec.For), true)
			})
		case KindPanic:
			spec := s
			target := inj.ecus[spec.Target]
			inj.at(spec.At, func() {
				target.InjectPanic(spec.Detail)
				inj.note(KindPanic, spec.Target, true)
			})
		case KindDetach:
			spec := s
			target := inj.ports[spec.Target]
			inj.at(spec.At, func() {
				target.Detach()
				inj.note(KindDetach, spec.Target, true)
			})
			if spec.For > 0 {
				inj.at(spec.At+spec.For, func() {
					target.Reattach()
					if inj.tel != nil {
						inj.tel.Emit(telemetry.Event{
							At: inj.sched.Now(), Kind: telemetry.EvRecover,
							Actor: "faults", Name: "reattach", Detail: spec.Target,
						})
					}
				})
			}
		}
	}
	if len(inj.wire) > 0 {
		inj.bus.SetInterceptor(inj.intercept)
	}
	return nil
}

// Stop disarms pending fault events and removes the wire interceptor.
// Already-applied faults (a detached port, a crashed ECU) are not undone.
func (inj *Injector) Stop() {
	if !inj.running {
		return
	}
	inj.running = false
	for _, t := range inj.timers {
		t.Stop()
	}
	inj.timers = nil
	if len(inj.wire) > 0 && inj.bus != nil {
		inj.bus.SetInterceptor(nil)
	}
	inj.wire = nil
}

// at schedules a cancellable one-shot injection step.
func (inj *Injector) at(at time.Duration, fn func()) {
	if at < inj.sched.Now() {
		return // window already past; nothing to arm
	}
	inj.timers = append(inj.timers, inj.sched.At(at, fn))
}

// traceWindow emits open/close trace events for a wire-fault window so the
// Perfetto export shows the fault envelope, without one event per frame.
func (inj *Injector) traceWindow(s Spec) {
	if inj.tel == nil {
		return
	}
	spec := s
	inj.at(spec.At, func() {
		inj.tel.Emit(telemetry.Event{
			At: inj.sched.Now(), Kind: telemetry.EvFault,
			Actor: "faults", Name: string(spec.Kind) + "-window",
			Detail: fmt.Sprintf("p=%v for %v", spec.prob(), spec.For),
		})
	})
}

// prob returns the effective application probability.
func (s Spec) prob() float64 {
	if s.Prob <= 0 {
		return 1
	}
	return s.Prob
}

// intercept is the bus wire-fault hook: every active spec rolls its own
// stream for every frame (so streams stay independent of one another's
// verdicts); the first spec in plan order that hits decides the action.
func (inj *Injector) intercept(f can.Frame) bus.TxAction {
	now := inj.sched.Now()
	action := bus.TxDeliver
	var hit *wireFault
	for _, w := range inj.wire {
		if !w.active(now) {
			continue
		}
		roll := w.spec.prob() >= 1 || w.rng.Float64() < w.spec.prob()
		if roll && hit == nil {
			hit = w
			action = w.action
		}
	}
	if hit != nil {
		inj.note(hit.spec.Kind, "", false)
	}
	return action
}

// armBabble schedules a babbling-idiot flood: a dedicated node transmitting
// the spec identifier every period inside the window. The node wins every
// arbitration round against higher identifiers, starving legitimate traffic.
func (inj *Injector) armBabble(s Spec) {
	spec := s
	period := spec.Every
	if period <= 0 {
		period = BabblePeriod
	}
	inj.at(spec.At, func() {
		if inj.babblePort == nil {
			inj.babblePort = inj.bus.Connect("babble")
		}
		frame := can.MustNew(spec.ID, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
		if inj.tel != nil {
			inj.tel.Emit(telemetry.Event{
				At: inj.sched.Now(), Kind: telemetry.EvFault,
				Actor: "faults", Name: "babble-start",
				Detail: fmt.Sprintf("id=%03X every %v", uint32(spec.ID), period),
			})
		}
		var flood *clock.Timer
		flood = inj.sched.Every(period, func() {
			if spec.For > 0 && inj.sched.Now() >= spec.At+spec.For {
				flood.Stop()
				return
			}
			if err := inj.babblePort.Send(frame); err == nil {
				inj.note(KindBabble, "", false)
			}
		})
		inj.timers = append(inj.timers, flood)
	})
}

// Kinds returns the sorted distinct kinds in the plan (used by reports and
// tests).
func (p Plan) Kinds() []string {
	seen := map[string]bool{}
	for _, s := range p.Specs {
		seen[string(s.Kind)] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
