// Package guided implements coverage-guided fuzzing on top of the core
// campaign: a feedback signal distilled from what the virtual world already
// exposes (responses on the bus, ECU state probes, error-counter movement),
// a bounded novelty map recording which behaviours have been seen, an
// evolving corpus of frames that provoked something new, and a minimizer
// that shrinks a finding's trigger window to a minimal reproducer.
//
// The paper's fuzzer is blind: §V concedes that value coverage of the CAN
// space is combinatorially hopeless and falls back to hand-seeded targeted
// fuzzing. Werquin et al. ("Automated Fuzzing of Automotive Control
// Units") close the loop instead — mutation parents are chosen by how the
// ECUs *responded* — and find the same fault classes orders of magnitude
// faster. This package reproduces that idea inside the deterministic
// simulation: every decision is driven by a splitmix64-derived RNG stream,
// so a guided campaign is bit-for-bit replayable from its seed, fleet
// trials shard cleanly, and corpora merge deterministically.
package guided

import (
	"math/bits"

	"repro/internal/faults"
)

// mapBits is the novelty-map size in bits: 64 Ki entries (8 KiB), the
// AFL-style compromise between collision rate and cache footprint. The map
// is bounded by construction — features hash into it, they never grow it.
const mapBits = 1 << 16

// noveltyMap is a fixed-size bitmap over feature hashes.
type noveltyMap struct {
	bits [mapBits / 64]uint64
}

// observe sets the feature's bit and reports whether it was newly set.
func (n *noveltyMap) observe(feature uint64) bool {
	idx := feature % mapBits
	word, mask := idx/64, uint64(1)<<(idx%64)
	if n.bits[word]&mask != 0 {
		return false
	}
	n.bits[word] |= mask
	return true
}

// count returns the number of set bits (distinct behaviours seen).
func (n *noveltyMap) count() int {
	total := 0
	for _, w := range n.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// Feature kinds, mixed into the hash so the same raw values from different
// signal classes land on different bits.
const (
	featResponse = 0x52455350 // "RESP": (responder id, dlc) pair seen on the bus
	featProbe    = 0x50524F42 // "PROB": ECU state probe moved to a new bucket
)

// hashFeature composes a feature hash from its two parts with the same
// splitmix64 mixer the seed derivation uses: fold each part in, mix, so
// (kind, a, b) and (kind, b, a) land on unrelated bits. The arity is fixed
// — every feature is a (kind, a, b) triple — so the per-frame Observe path
// never builds a variadic argument slice.
func hashFeature(kind, a, b uint64) uint64 {
	h := faults.SplitMix64(kind)
	h = faults.SplitMix64(h ^ a)
	return faults.SplitMix64(h ^ b)
}

// hashName hashes a probe name (FNV-1a, then mixed); probe features are
// keyed by name rather than registration index so the feature space does
// not depend on probe registration order.
func hashName(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return faults.SplitMix64(h)
}

// bucketize maps a probe value onto AFL-style hit-count buckets
// (0,1,2,3,4-7,8-15,16-31,32-127,128+): small state values stay distinct,
// unbounded counters saturate, so a counter that keeps incrementing stops
// being "novel" after a few orders of magnitude.
func bucketize(v uint64) uint64 {
	switch {
	case v <= 3:
		return v
	case v < 8:
		return 4
	case v < 16:
		return 5
	case v < 32:
		return 6
	case v < 128:
		return 7
	default:
		return 8
	}
}
