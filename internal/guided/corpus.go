package guided

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/can"
	"repro/internal/core"
)

// maxCorpus bounds the corpus; when full, the lowest-energy entry is
// evicted (first such entry on ties, so eviction is deterministic).
const maxCorpus = 512

// entry is one corpus frame with its accumulated energy: 1 at admission
// plus one per novelty credit earned since. Energy weights parent
// selection, so frames that keep provoking new behaviour are mutated more.
type entry struct {
	frame  can.Frame
	energy uint64
}

// corpus is the evolving seed pool. Entries keep insertion order — the
// serialized form and the weighted pick both walk it in order, which is
// what makes fleet-merged corpora independent of worker count.
type corpus struct {
	entries []entry
	index   map[string]int // serialized frame -> entries index
}

func newCorpus() *corpus {
	return &corpus{index: make(map[string]int)}
}

func (c *corpus) size() int { return len(c.entries) }

// reset empties the corpus in place, retaining entry and index capacity.
func (c *corpus) reset() {
	c.entries = c.entries[:0]
	clear(c.index)
}

// add admits a frame with the given energy credit, or tops up an existing
// entry's energy. Reports whether the frame was newly admitted.
func (c *corpus) add(f can.Frame, energy uint64) bool {
	if energy == 0 {
		energy = 1
	}
	key := core.FormatCorpusFrame(f)
	if i, ok := c.index[key]; ok {
		c.entries[i].energy += energy
		return false
	}
	if len(c.entries) >= maxCorpus {
		c.evict()
	}
	c.index[key] = len(c.entries)
	c.entries = append(c.entries, entry{frame: f, energy: energy})
	return true
}

// evict removes the first lowest-energy entry.
func (c *corpus) evict() {
	lo := 0
	for i, e := range c.entries {
		if e.energy < c.entries[lo].energy {
			lo = i
		}
	}
	delete(c.index, core.FormatCorpusFrame(c.entries[lo].frame))
	c.entries = append(c.entries[:lo], c.entries[lo+1:]...)
	for i := lo; i < len(c.entries); i++ {
		c.index[core.FormatCorpusFrame(c.entries[i].frame)] = i
	}
}

// pick returns an energy-weighted random entry. Caller guarantees the
// corpus is non-empty.
func (c *corpus) pick(rng *rand.Rand) can.Frame {
	var total uint64
	for _, e := range c.entries {
		total += e.energy
	}
	x := uint64(rng.Int63n(int64(total)))
	for _, e := range c.entries {
		if x < e.energy {
			return e.frame
		}
		x -= e.energy
	}
	return c.entries[len(c.entries)-1].frame
}

// energies appends every entry's energy to dst (insertion order) and
// returns the extended slice. Callers pass a reused buffer so periodic
// introspection snapshots do not allocate once the buffer has grown.
func (c *corpus) energies(dst []uint64) []uint64 {
	for _, e := range c.entries {
		dst = append(dst, e.energy)
	}
	return dst
}

// frames returns the corpus in serialized "ID#HEXDATA" form, insertion
// order.
func (c *corpus) frames() []string {
	out := make([]string, len(c.entries))
	for i, e := range c.entries {
		out[i] = core.FormatCorpusFrame(e.frame)
	}
	return out
}

// WriteCorpus writes corpus lines (one "ID#HEXDATA" frame per line) — the
// same format as ConfigJSON.Corpus entries, so a written corpus feeds back
// into -corpus-in or a mutate-mode config unchanged.
func WriteCorpus(w io.Writer, lines []string) error {
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCorpus parses a corpus file written by WriteCorpus; blank lines and
// '#'-prefixed comment lines are skipped.
func ReadCorpus(r io.Reader) ([]can.Frame, error) {
	var out []can.Frame
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := core.ParseCorpusFrame(line)
		if err != nil {
			return nil, fmt.Errorf("guided: corpus line %d: %w", lineNo, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("guided: %w", err)
	}
	return out, nil
}

// MergeCorpora merges per-trial corpora in trial order, deduplicating by
// serialized frame. Given the same per-trial slices the result is
// identical regardless of how many workers produced them — the fleet
// determinism guarantee extended to corpora.
func MergeCorpora(perTrial [][]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, lines := range perTrial {
		for _, l := range lines {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// SortedCopy returns a lexicographically sorted copy of lines — handy for
// comparing corpora from differently-ordered sources in tests.
func SortedCopy(lines []string) []string {
	out := make([]string, len(lines))
	copy(out, lines)
	sort.Strings(out)
	return out
}
