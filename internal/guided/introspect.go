package guided

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Fuzzer introspection: the guided engine's internal state — novelty-map
// saturation, corpus shape, mutate-vs-explore balance, staleness — exposed
// as a sampleable aggregate, the /fuzz.json view of the campaign
// observatory. The design mirrors the telemetry hooks: a nil
// *Introspection (the default) costs the engine one pointer check per
// tick and allocates nothing, so the zero-alloc guided hot path pinned by
// the root alloc tests is untouched unless introspection is requested.
//
// One Introspection aggregates any number of engines: a fleet campaign
// registers every trial's engine as it is built, and Snapshot folds the
// live ones into campaign-level totals. Engines publish through atomic
// stores (single writer: the engine's own scheduler goroutine), so
// sampling never stalls a worker.

// energyPublishEvery is how many engine ticks pass between corpus-energy
// snapshots. Energies need a short lock and a buffer copy, so they are
// amortised; the scalar counters are stored every tick.
const energyPublishEvery = 512

// EngineStats is one engine's introspection slot. All scalar fields are
// atomics written by the engine goroutine and read by samplers; the energy
// snapshot is guarded by its own mutex because it is a slice copy.
type EngineStats struct {
	execs             atomic.Uint64
	noveltyHits       atomic.Uint64
	mutations         atomic.Uint64
	explorations      atomic.Uint64
	execsSinceNovelty atomic.Uint64
	noveltyBits       atomic.Int64
	corpusSize        atomic.Int64

	mu       sync.Mutex
	energies []uint64
}

// publishEnergies refreshes the slot's corpus-energy snapshot, reusing the
// previous buffer.
func (s *EngineStats) publishEnergies(c *corpus) {
	s.mu.Lock()
	s.energies = c.energies(s.energies[:0])
	s.mu.Unlock()
}

// appendEnergies copies the slot's snapshot into dst under the lock.
func (s *EngineStats) appendEnergies(dst []uint64) []uint64 {
	s.mu.Lock()
	dst = append(dst, s.energies...)
	s.mu.Unlock()
	return dst
}

// Introspection aggregates the EngineStats slots of every registered
// engine. The zero value is unusable; a nil pointer is a valid "disabled"
// plane (Register returns nil, Snapshot returns the zero snapshot).
type Introspection struct {
	mu      sync.Mutex
	engines []*EngineStats
}

// NewIntrospection returns an empty aggregation plane.
func NewIntrospection() *Introspection { return &Introspection{} }

// Register allocates a stats slot for one engine. Nil-safe: registering on
// a nil plane returns a nil slot, which the engine treats as "disabled".
func (in *Introspection) Register() *EngineStats {
	if in == nil {
		return nil
	}
	s := &EngineStats{}
	in.mu.Lock()
	in.engines = append(in.engines, s)
	in.mu.Unlock()
	return s
}

// EnergyQuantiles summarises the corpus energy distribution across all
// registered engines — how concentrated the feedback credit is.
type EnergyQuantiles struct {
	P25 uint64 `json:"p25"`
	P50 uint64 `json:"p50"`
	P75 uint64 `json:"p75"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
	// Sum is the total energy in the corpus (the parent-selection weight
	// mass).
	Sum uint64 `json:"sum"`
}

// FuzzSnapshot is one sample of guided-engine internals — the /fuzz.json
// document. Counters are summed over every engine registered so far
// (including finished trials' engines, whose counters simply stop moving).
type FuzzSnapshot struct {
	// Engines is the number of registered engine slots.
	Engines int `json:"engines"`
	// NoveltyMapBits is each engine's novelty-map capacity in bits.
	NoveltyMapBits int `json:"noveltyMapBits"`
	// NoveltyBitsSet sums set novelty bits across engines;
	// NoveltySaturation is NoveltyBitsSet/(Engines*NoveltyMapBits).
	NoveltyBitsSet    int64   `json:"noveltyBitsSet"`
	NoveltySaturation float64 `json:"noveltySaturation"`
	// CorpusSize sums retained corpus entries across engines.
	CorpusSize int64 `json:"corpusSize"`
	// Execs, NoveltyHits, Mutations and Explorations sum the per-engine
	// counters; MutateRatio is Mutations/(Mutations+Explorations).
	Execs        uint64  `json:"execs"`
	NoveltyHits  uint64  `json:"noveltyHits"`
	Mutations    uint64  `json:"mutations"`
	Explorations uint64  `json:"explorations"`
	MutateRatio  float64 `json:"mutateRatio"`
	// ExecsSinceNoveltyMin is the smallest per-engine staleness — how long
	// ago *any* engine last saw new behaviour.
	ExecsSinceNoveltyMin uint64 `json:"execsSinceNoveltyMin"`
	// Energy summarises the merged corpus energy distribution (zero when
	// no engine has published a corpus snapshot yet).
	Energy EnergyQuantiles `json:"energy"`
}

// Snapshot folds every registered engine into one campaign-level view.
// Safe to call concurrently with engines running.
func (in *Introspection) Snapshot() FuzzSnapshot {
	var s FuzzSnapshot
	if in == nil {
		return s
	}
	in.mu.Lock()
	engines := make([]*EngineStats, len(in.engines))
	copy(engines, in.engines)
	in.mu.Unlock()

	s.Engines = len(engines)
	s.NoveltyMapBits = mapBits
	var energies []uint64
	first := true
	for _, e := range engines {
		s.Execs += e.execs.Load()
		s.NoveltyHits += e.noveltyHits.Load()
		s.Mutations += e.mutations.Load()
		s.Explorations += e.explorations.Load()
		s.NoveltyBitsSet += e.noveltyBits.Load()
		s.CorpusSize += e.corpusSize.Load()
		if since := e.execsSinceNovelty.Load(); first || since < s.ExecsSinceNoveltyMin {
			s.ExecsSinceNoveltyMin = since
			first = false
		}
		energies = e.appendEnergies(energies)
	}
	if s.Engines > 0 {
		s.NoveltySaturation = float64(s.NoveltyBitsSet) / float64(s.Engines*mapBits)
	}
	if gen := s.Mutations + s.Explorations; gen > 0 {
		s.MutateRatio = float64(s.Mutations) / float64(gen)
	}
	if len(energies) > 0 {
		sort.Slice(energies, func(i, j int) bool { return energies[i] < energies[j] })
		q := func(p float64) uint64 {
			i := int(p * float64(len(energies)-1))
			return energies[i]
		}
		s.Energy = EnergyQuantiles{
			P25: q(0.25), P50: q(0.50), P75: q(0.75),
			P90: q(0.90), P99: q(0.99), Max: energies[len(energies)-1],
		}
		for _, e := range energies {
			s.Energy.Sum += e
		}
	}
	return s
}
