package guided

import (
	"errors"
	"io"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/fleet"
)

// playback is a core.FrameSource that transmits a fixed sequence once, one
// frame per timing tick, then goes silent. The minimizer installs one per
// candidate execution.
type playback struct {
	frames []can.Frame
	i      int
}

func (p *playback) Next() (can.Frame, bool) {
	if p.i >= len(p.frames) {
		return can.Frame{}, false
	}
	f := p.frames[p.i]
	p.i++
	return f, true
}

func (p *playback) Observe(bus.Message) {}

// Playback returns a FrameSource that replays frames once, one per tick —
// exported for reproducer verification outside the minimizer.
func Playback(frames []can.Frame) core.FrameSource {
	return &playback{frames: frames}
}

// Minimizer shrinks a finding's trigger window to a minimal reproducer:
// ddmin over the frame sequence, then per-frame length, byte and bit
// shrinking, re-executing every candidate in a fresh world built by the
// fleet factory. Minimization is deterministic: the candidate schedule is
// a pure function of the input sequence, and each execution is a pure
// function of (Factory, Seed).
type Minimizer struct {
	// Factory builds a fresh world per candidate execution (the same
	// factory a fleet trial uses). Required.
	Factory fleet.TargetFactory
	// Seed is passed to the factory (TrialSpec{Index: 0, Seed: Seed}); use
	// the seed of the trial being minimized so the world matches.
	Seed int64
	// Oracle is the name of the oracle whose finding must be reproduced.
	// Required.
	Oracle string
	// Interval is the playback pacing (default core.MinInterval).
	Interval time.Duration
	// Settle is extra virtual time after the last frame for responses and
	// oracle latency (default 150ms).
	Settle time.Duration
	// MaxExecutions bounds fresh-world replays (default 512). When the
	// budget runs out remaining candidates are treated as non-reproducing,
	// so the result is still a valid (just less minimal) reproducer.
	MaxExecutions int

	executions int
	exhausted  bool
	detail     string
	memo       map[string]bool
}

// Result is a minimization outcome.
type Result struct {
	// Frames is the minimized sequence (== input when nothing could be
	// removed; nil when the input never reproduced).
	Frames []can.Frame
	// Oracle and Detail describe the reproduced finding.
	Oracle string
	Detail string
	// OriginalFrames is the input length.
	OriginalFrames int
	// Executions is the number of fresh-world replays spent.
	Executions int
	// Reproduced reports whether even the full input tripped the oracle.
	Reproduced bool
	// Interval and Settle echo the (defaulted) replay pacing the result was
	// confirmed under, so downstream consumers — the findings database, a
	// regression replayer — can re-execute the trigger with the exact
	// timing that reproduced it rather than re-guessing defaults.
	Interval time.Duration
	Settle   time.Duration
}

// ErrNoRepro is returned when the full input sequence does not reproduce
// the finding (the window was too small, or the finding needs state the
// fresh world lacks).
var ErrNoRepro = errors.New("guided: input sequence does not reproduce the finding")

var errMinimizerConfig = errors.New("guided: Minimizer needs Factory and Oracle")

// Minimize runs the full reduction and returns the minimal reproducer.
func (m *Minimizer) Minimize(frames []can.Frame) (Result, error) {
	if m.Factory == nil || m.Oracle == "" {
		return Result{}, errMinimizerConfig
	}
	if m.Interval < core.MinInterval {
		m.Interval = core.MinInterval
	}
	if m.Settle <= 0 {
		m.Settle = 150 * time.Millisecond
	}
	if m.MaxExecutions <= 0 {
		m.MaxExecutions = 512
	}
	m.executions, m.exhausted = 0, false
	m.memo = make(map[string]bool)

	res := Result{Oracle: m.Oracle, OriginalFrames: len(frames),
		Interval: m.Interval, Settle: m.Settle}
	if !m.execute(frames) {
		res.Executions = m.executions
		return res, ErrNoRepro
	}
	res.Reproduced = true

	frames = m.ddmin(frames)
	frames = m.shrinkFrames(frames)

	res.Frames = frames
	res.Detail = m.detail
	res.Executions = m.executions
	return res, nil
}

// execute replays a candidate in a fresh world and reports whether the
// target oracle fired.
func (m *Minimizer) execute(cand []can.Frame) bool {
	if len(cand) == 0 {
		return false
	}
	key := corpusKey(cand)
	if v, ok := m.memo[key]; ok {
		return v
	}
	if m.executions >= m.MaxExecutions {
		m.exhausted = true
		return false
	}
	m.executions++
	ok := m.executeFresh(cand)
	m.memo[key] = ok
	return ok
}

func (m *Minimizer) executeFresh(cand []can.Frame) bool {
	w, err := m.Factory(fleet.TrialSpec{Index: 0, Seed: m.Seed})
	if err != nil || w == nil || w.Campaign == nil || w.Sched == nil {
		return false
	}
	w.Campaign.SetFrameSource(&playback{frames: cand})
	deadline := m.Interval*time.Duration(len(cand)) + m.Settle
	f, found := w.Campaign.RunUntilFinding(deadline)
	if !found || f.Verdict.Oracle != m.Oracle {
		return false
	}
	m.detail = f.Verdict.Detail
	return true
}

// ddmin is Zeller's delta debugging over the frame sequence: try dropping
// ever-finer chunks, keeping any candidate that still reproduces.
func (m *Minimizer) ddmin(frames []can.Frame) []can.Frame {
	n := 2
	for len(frames) >= 2 {
		chunk := (len(frames) + n - 1) / n
		reduced := false
		for start := 0; start < len(frames); start += chunk {
			end := start + chunk
			if end > len(frames) {
				end = len(frames)
			}
			cand := make([]can.Frame, 0, len(frames)-(end-start))
			cand = append(cand, frames[:start]...)
			cand = append(cand, frames[end:]...)
			if m.execute(cand) {
				frames = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(frames) {
				break
			}
			n *= 2
			if n > len(frames) {
				n = len(frames)
			}
		}
	}
	return frames
}

// shrinkFrames reduces each surviving frame in place: shortest reproducing
// payload length first, then zeroing bytes, then clearing individual bits.
func (m *Minimizer) shrinkFrames(frames []can.Frame) []can.Frame {
	for i := range frames {
		// Length: adopt the shortest truncation that still reproduces.
		for l := 0; l < int(frames[i].Len); l++ {
			cand := cloneSeq(frames)
			trimFrame(&cand[i], l)
			if m.execute(cand) {
				frames = cand
				break
			}
		}
		// Bytes: zero any byte whose value is not load-bearing.
		for j := 0; j < int(frames[i].Len); j++ {
			if frames[i].Data[j] == 0 {
				continue
			}
			cand := cloneSeq(frames)
			cand[i].Data[j] = 0
			if m.execute(cand) {
				frames = cand
			}
		}
		// Bits: clear remaining set bits one at a time.
		for j := 0; j < int(frames[i].Len); j++ {
			for b := 7; b >= 0; b-- {
				mask := byte(1) << b
				if frames[i].Data[j]&mask == 0 {
					continue
				}
				cand := cloneSeq(frames)
				cand[i].Data[j] &^= mask
				if m.execute(cand) {
					frames = cand
				}
			}
		}
	}
	return frames
}

func cloneSeq(frames []can.Frame) []can.Frame {
	out := make([]can.Frame, len(frames))
	copy(out, frames)
	return out
}

func trimFrame(f *can.Frame, newLen int) {
	for j := newLen; j < int(f.Len); j++ {
		f.Data[j] = 0
	}
	f.Len = uint8(newLen)
}

func corpusKey(frames []can.Frame) string {
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = core.FormatCorpusFrame(f)
	}
	return strings.Join(parts, ";")
}

// Exhausted reports whether the last Minimize run hit its execution budget
// (the result is then valid but possibly not minimal).
func (m *Minimizer) Exhausted() bool { return m.exhausted }

// CorpusLines returns the minimized frames in "ID#HEXDATA" form.
func (r Result) CorpusLines() []string {
	out := make([]string, len(r.Frames))
	for i, f := range r.Frames {
		out[i] = core.FormatCorpusFrame(f)
	}
	return out
}

// Trigger converts the result to the report's minimized-trigger section.
func (r Result) Trigger() *core.MinimizedTrigger {
	return &core.MinimizedTrigger{
		Oracle:         r.Oracle,
		Detail:         r.Detail,
		OriginalFrames: r.OriginalFrames,
		Frames:         r.CorpusLines(),
		Executions:     r.Executions,
	}
}

// WriteReplayLog writes the minimized sequence as a canreplay-compatible
// capture log, frames spaced by interval on the given interface name.
func (r Result) WriteReplayLog(w io.Writer, iface string, interval time.Duration) error {
	if interval < core.MinInterval {
		interval = core.MinInterval
	}
	t := capture.NewTrace(0)
	for i, f := range r.Frames {
		t.Append(capture.Record{Time: time.Duration(i) * interval, Frame: f, Origin: iface})
	}
	return capture.WriteLog(w, t, iface)
}
