package guided_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/core"
	"repro/internal/guided"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// guidedExp builds one guided unlock world; helper for the tests below.
func guidedExp(t *testing.T, check bcm.CheckMode, seed int64, opts ...guided.EngineOption) *testbench.GuidedUnlockExperiment {
	t.Helper()
	exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: check},
		core.Config{Seed: seed, Mode: core.ModeGuided}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestGuidedUnlockFindsFinding(t *testing.T) {
	exp := guidedExp(t, bcm.CheckByteOnly, 1)
	ttu, ok := exp.Run(10 * time.Minute)
	if !ok {
		t.Fatal("guided campaign never unlocked within 10 virtual minutes")
	}
	if ttu <= 0 {
		t.Fatalf("time-to-unlock = %v", ttu)
	}
	if exp.Engine.CorpusSize() == 0 {
		t.Fatal("corpus empty after a finding run")
	}
	if exp.Engine.NoveltyHits() == 0 {
		t.Fatal("no novelty recorded")
	}
	rep := exp.Campaign.BuildReport()
	if rep.Mode != "guided" {
		t.Fatalf("report mode = %q", rep.Mode)
	}
	if rep.CorpusSize != exp.Engine.CorpusSize() || rep.NoveltyHits != exp.Engine.NoveltyHits() {
		t.Fatalf("report corpus stats (%d,%d) != engine (%d,%d)",
			rep.CorpusSize, rep.NoveltyHits, exp.Engine.CorpusSize(), exp.Engine.NoveltyHits())
	}
}

func TestGuidedDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, bool, []string, uint64) {
		exp := guidedExp(t, bcm.CheckByteAndLength, 42)
		ttu, ok := exp.Run(5 * time.Minute)
		return ttu, ok, exp.Engine.CorpusFrames(), exp.Engine.NoveltyHits()
	}
	t1, ok1, c1, n1 := run()
	t2, ok2, c2, n2 := run()
	if t1 != t2 || ok1 != ok2 || n1 != n2 {
		t.Fatalf("runs diverged: (%v,%v,%d) vs (%v,%v,%d)", t1, ok1, n1, t2, ok2, n2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("corpora diverged:\n%v\n%v", c1, c2)
	}
}

func TestGuidedTelemetryGauges(t *testing.T) {
	tel := telemetry.New(0)
	exp := guidedExp(t, bcm.CheckByteOnly, 3, guided.WithTelemetry(tel))
	if _, ok := exp.Run(10 * time.Minute); !ok {
		t.Fatal("no finding")
	}
	// Re-registration interns by name, so fetching returns the live series.
	corpus := tel.Registry.Gauge("corpus_size", "").Value()
	novelty := tel.Registry.Counter("novelty_hits_total", "").Value()
	if corpus == 0 || novelty == 0 {
		t.Fatalf("corpus_size = %v, novelty_hits_total = %v; want both > 0", corpus, novelty)
	}
	if int(corpus) != exp.Engine.CorpusSize() {
		t.Fatalf("gauge %v != engine corpus %d", corpus, exp.Engine.CorpusSize())
	}
}

// TestGuidedSeedCorpusSharing round-trips an evolved corpus through the
// file format into a second engine.
func TestGuidedSeedCorpusSharing(t *testing.T) {
	exp := guidedExp(t, bcm.CheckByteOnly, 5)
	if _, ok := exp.Run(10 * time.Minute); !ok {
		t.Fatal("no finding")
	}
	lines := exp.Engine.CorpusFrames()
	if len(lines) == 0 {
		t.Fatal("empty corpus")
	}
	var buf strings.Builder
	if err := guided.WriteCorpus(&buf, lines); err != nil {
		t.Fatal(err)
	}
	parsed, err := guided.ReadCorpus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := guided.NewEngine(core.Config{Seed: 6, Mode: core.ModeGuided},
		guided.WithSeedFrames(parsed))
	if err != nil {
		t.Fatal(err)
	}
	if eng.CorpusSize() != len(lines) {
		t.Fatalf("seeded corpus size = %d, want %d", eng.CorpusSize(), len(lines))
	}
}
