package guided

import (
	"fmt"
	"math/rand"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// rngStream is the engine's stream index in the campaign seed's splitmix64
// family (fleet trial seeds use low indices of their own bases; any fixed
// constant works, it just must never change).
const rngStream = 0x6744

// maxPendingFeatures bounds the response features buffered between ticks so
// a babbling bus cannot grow the engine.
const maxPendingFeatures = 256

// exploreOneIn is the blind-exploration rate: one generated frame in this
// many is pure random even when the corpus has parents, so the engine keeps
// probing identifiers outside the corpus's neighbourhood.
const exploreOneIn = 8

// Probe samples one scalar of system state the bus does not broadcast —
// a lock flag, a UDS session level, an error counter. The engine hashes
// (name, bucketized value) into the novelty map each tick, so a probe
// moving to a value bucket it has never occupied counts as novel feedback.
// Fn runs on the scheduler goroutine; it must be cheap and side-effect
// free.
type Probe struct {
	Name string
	Fn   func() uint64
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithProbes registers state probes. Probe features are keyed by name, so
// registration order does not affect which behaviours count as novel. Name
// hashes are computed once here rather than on every harvest tick.
func WithProbes(probes ...Probe) EngineOption {
	return func(e *Engine) {
		for _, p := range probes {
			e.probes = append(e.probes, p)
			e.probeHash = append(e.probeHash, hashName(p.Name))
		}
	}
}

// WithTelemetry exports the engine's corpus_size gauge and
// novelty_hits_total counter on the given plane. Nil is a no-op.
func WithTelemetry(t *telemetry.Telemetry) EngineOption {
	return func(e *Engine) {
		if t == nil {
			return
		}
		e.gCorpus = t.Registry.Gauge("corpus_size",
			"Guided-mode corpus entries retained by the feedback engine.")
		e.cNovelty = t.Registry.Counter("novelty_hits_total",
			"Novel feedback features credited to sent frames.")
	}
}

// WithSeedFrames preloads the corpus (e.g. from a -corpus-in file written
// by a previous campaign). Invalid or remote frames are skipped — a shared
// corpus file must never brick the engine.
func WithSeedFrames(frames []can.Frame) EngineOption {
	return func(e *Engine) {
		for _, f := range frames {
			if f.Remote || f.Validate() != nil {
				continue
			}
			e.corp.add(f, 1)
		}
	}
}

// Engine is the coverage-guided frame source: it implements
// core.FrameSource (install with WithFrameSource/SetFrameSource) and
// core.CorpusStats (so BuildReport embeds corpus size and novelty hits).
//
// Per timing tick the engine (1) harvests feedback accumulated since the
// previous tick — response (id, dlc) pairs seen on the bus plus the
// registered probes — into the novelty map, (2) credits any novelty to the
// frame it sent last, admitting it to the corpus or topping up its energy,
// and (3) emits the next frame: an energy-weighted corpus parent mutated a
// little, or a pure-random frame for exploration. All randomness comes
// from one splitmix64-derived stream, so the whole campaign is
// deterministic in (config seed, world).
type Engine struct {
	cfg  core.Config
	rng  *rand.Rand
	nov  noveltyMap
	corp *corpus

	probes    []Probe
	probeHash []uint64 // hashName of each probe, cached at registration
	pending   []uint64

	lastSent  can.Frame
	lastValid bool

	noveltyHits uint64
	sent        uint64

	gCorpus  *telemetry.Gauge
	cNovelty *telemetry.Counter
}

// NewEngine validates the configuration (ranges, corpus syntax) exactly as
// a campaign would and builds the feedback engine.
func NewEngine(cfg core.Config, opts ...EngineOption) (*Engine, error) {
	if cfg.Mode == 0 {
		cfg.Mode = core.ModeGuided
	}
	gen, err := core.NewGenerator(cfg)
	if err != nil {
		return nil, fmt.Errorf("guided: %w", err)
	}
	e := &Engine{
		cfg:     gen.Config(), // defaults applied
		rng:     faults.DeriveRNG(cfg.Seed, rngStream),
		corp:    newCorpus(),
		pending: make([]uint64, 0, maxPendingFeatures),
	}
	for _, o := range opts {
		o(e)
	}
	// Config-level corpus frames seed the pool too (ConfigJSON reuse).
	for _, f := range e.cfg.Corpus {
		if !f.Remote && f.Validate() == nil {
			e.corp.add(f, 1)
		}
	}
	return e, nil
}

// Observe implements core.FrameSource: every message the campaign's port
// receives (which, on this bus model, is exactly the traffic *other* nodes
// transmit) contributes a response feature.
func (e *Engine) Observe(m bus.Message) {
	if len(e.pending) >= maxPendingFeatures {
		return
	}
	e.pending = append(e.pending,
		hashFeature(featResponse, uint64(m.Frame.ID), uint64(m.Frame.Len)))
}

// Next implements core.FrameSource: harvest feedback, credit the previous
// frame, emit the next one.
func (e *Engine) Next() (can.Frame, bool) {
	novel := e.harvest()
	if novel > 0 {
		e.noveltyHits += novel
		e.cNovelty.Add(novel)
		if e.lastValid {
			e.corp.add(e.lastSent, novel)
			e.gCorpus.Set(float64(e.corp.size()))
		}
	}
	f := e.generate()
	e.lastSent, e.lastValid = f, true
	e.sent++
	return f, true
}

// harvest drains buffered response features, samples the probes, and
// returns how many features were novel.
func (e *Engine) harvest() uint64 {
	var novel uint64
	for _, h := range e.pending {
		if e.nov.observe(h) {
			novel++
		}
	}
	e.pending = e.pending[:0]
	for i, p := range e.probes {
		h := hashFeature(featProbe, e.probeHash[i], bucketize(p.Fn()))
		if e.nov.observe(h) {
			novel++
		}
	}
	return novel
}

// generate picks the next frame: mutate a corpus parent, or explore.
func (e *Engine) generate() can.Frame {
	if e.corp.size() == 0 || e.rng.Intn(exploreOneIn) == 0 {
		return e.randomFrame()
	}
	return e.mutate(e.corp.pick(e.rng))
}

// randomFrame mirrors the blind generator's uniform draw over the
// configured ranges.
func (e *Engine) randomFrame() can.Frame {
	var f can.Frame
	if n := len(e.cfg.TargetIDs); n > 0 {
		f.ID = e.cfg.TargetIDs[e.rng.Intn(n)]
	} else {
		f.ID = e.cfg.IDMin + can.ID(e.rng.Intn(int(e.cfg.IDMax-e.cfg.IDMin)+1))
	}
	length := e.cfg.LenMin + e.rng.Intn(e.cfg.LenMax-e.cfg.LenMin+1)
	f.Len = uint8(length)
	span := e.cfg.ByteMax - e.cfg.ByteMin + 1
	for i := 0; i < length; i++ {
		f.Data[i] = byte(e.cfg.ByteMin + e.rng.Intn(span))
	}
	return f
}

// mutate applies a small stack of random operators to a corpus parent.
// The identifier is mostly preserved — reaching a responsive identifier is
// the hard-won part of a corpus entry — while payload bits, bytes and
// length move freely within the configured ranges.
func (e *Engine) mutate(f can.Frame) can.Frame {
	ops := 1 + e.rng.Intn(3)
	span := e.cfg.ByteMax - e.cfg.ByteMin + 1
	for i := 0; i < ops; i++ {
		switch e.rng.Intn(8) {
		case 0, 1, 2: // flip one payload bit
			if f.Len > 0 {
				bit := e.rng.Intn(int(f.Len) * 8)
				f.Data[bit/8] ^= 1 << (bit % 8)
			}
		case 3, 4: // randomize one payload byte
			if f.Len > 0 {
				f.Data[e.rng.Intn(int(f.Len))] = byte(e.cfg.ByteMin + e.rng.Intn(span))
			}
		case 5: // resize within the length range, filling new bytes randomly
			newLen := e.cfg.LenMin + e.rng.Intn(e.cfg.LenMax-e.cfg.LenMin+1)
			for j := int(f.Len); j < newLen; j++ {
				f.Data[j] = byte(e.cfg.ByteMin + e.rng.Intn(span))
			}
			for j := newLen; j < int(f.Len); j++ {
				f.Data[j] = 0
			}
			f.Len = uint8(newLen)
		case 6: // nudge a byte ±1 (gradient walking for magic values)
			if f.Len > 0 {
				j := e.rng.Intn(int(f.Len))
				if e.rng.Intn(2) == 0 {
					f.Data[j]++
				} else {
					f.Data[j]--
				}
			}
		case 7: // rarely, flip a low identifier bit (stay in the neighbourhood)
			f.ID ^= 1 << e.rng.Intn(4)
			if f.ID < e.cfg.IDMin || f.ID > e.cfg.IDMax {
				f.ID = e.cfg.IDMin + can.ID(e.rng.Intn(int(e.cfg.IDMax-e.cfg.IDMin)+1))
			}
		}
	}
	return f
}

// CorpusSize implements core.CorpusStats.
func (e *Engine) CorpusSize() int { return e.corp.size() }

// NoveltyHits implements core.CorpusStats.
func (e *Engine) NoveltyHits() uint64 { return e.noveltyHits }

// NoveltyBits returns the number of distinct behaviours recorded (set bits
// in the novelty map).
func (e *Engine) NoveltyBits() int { return e.nov.count() }

// CorpusFrames returns the corpus in serialized "ID#HEXDATA" form,
// admission order.
func (e *Engine) CorpusFrames() []string { return e.corp.frames() }

// Config returns the defaulted configuration in effect.
func (e *Engine) Config() core.Config { return e.cfg }
