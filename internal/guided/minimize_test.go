package guided_test

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/can"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/testbench"
)

// benchFactory builds a plain (blind-fuzzer) unlock world; the minimizer
// replaces its frame source anyway, so the generator never runs.
func benchFactory(check bcm.CheckMode) fleet.TargetFactory {
	return func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{Check: check},
			core.Config{Seed: spec.Seed})
		if err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	}
}

// guidedFactory builds a guided unlock world exposing its corpus.
func guidedFactory(check bcm.CheckMode) fleet.TargetFactory {
	return func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: check},
			core.Config{Seed: spec.Seed, Mode: core.ModeGuided})
		if err != nil {
			return nil, err
		}
		return &fleet.World{
			Sched:    exp.Bench.Scheduler(),
			Campaign: exp.Campaign,
			Corpus:   exp.Engine.CorpusFrames,
		}, nil
	}
}

func TestPlaybackSendsOnceThenSilence(t *testing.T) {
	frames := []can.Frame{
		{ID: 1, Len: 1, Data: [8]byte{0xAA}},
		{ID: 2, Len: 2, Data: [8]byte{0xBB, 0xCC}},
	}
	p := guided.Playback(frames)
	for i, want := range frames {
		got, ok := p.Next()
		if !ok || got != want {
			t.Fatalf("frame %d: got (%v,%v)", i, got, ok)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := p.Next(); ok {
			t.Fatal("playback kept emitting after exhaustion")
		}
	}
}

func TestMinimizeUnlockToSingleFrame(t *testing.T) {
	// Find the unlock with a guided campaign, then minimize its trigger
	// window. Under CheckByteOnly the true minimal reproducer is one frame:
	// command identifier, one byte, the unlock code — 215#20.
	exp := guidedExp(t, bcm.CheckByteOnly, 1)
	finding, ok := exp.Campaign.RunUntilFinding(10 * time.Minute)
	if !ok {
		t.Fatal("no finding to minimize")
	}
	m := &guided.Minimizer{
		Factory: benchFactory(bcm.CheckByteOnly),
		Seed:    1,
		Oracle:  finding.Verdict.Oracle,
	}
	res, err := m.Minimize(finding.Recent)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatal("input window did not reproduce")
	}
	if len(res.Frames) > 8 {
		t.Fatalf("reproducer has %d frames, acceptance bar is <= 8", len(res.Frames))
	}
	lines := res.CorpusLines()
	if len(lines) != 1 || lines[0] != "215#20" {
		t.Fatalf("minimal reproducer = %v, want [215#20]", lines)
	}
	if res.Executions == 0 || res.Executions > m.MaxExecutions {
		t.Fatalf("executions = %d", res.Executions)
	}
	trig := res.Trigger()
	if trig.Oracle != finding.Verdict.Oracle || len(trig.Frames) != 1 {
		t.Fatalf("trigger section %+v", trig)
	}
}

func TestMinimizeLengthCheckKeepsDLC(t *testing.T) {
	// Under CheckByteAndLength the parser demands the full 7-byte DLC, so
	// minimization must stop at a 7-byte frame with only the command byte
	// set: 215#20000000000000.
	exp := guidedExp(t, bcm.CheckByteAndLength, 42)
	finding, ok := exp.Campaign.RunUntilFinding(30 * time.Minute)
	if !ok {
		t.Fatal("no finding to minimize")
	}
	m := &guided.Minimizer{
		Factory: benchFactory(bcm.CheckByteAndLength),
		Seed:    42,
		Oracle:  finding.Verdict.Oracle,
	}
	res, err := m.Minimize(finding.Recent)
	if err != nil {
		t.Fatal(err)
	}
	lines := res.CorpusLines()
	if len(lines) != 1 || lines[0] != "215#20000000000000" {
		t.Fatalf("minimal reproducer = %v, want [215#20000000000000]", lines)
	}
}

func TestMinimizeReplayLogRoundTrips(t *testing.T) {
	// The emitted log must parse back with capture.ParseLog and, replayed
	// into a fresh bench (exactly what cmd/canreplay does), reproduce the
	// unlock.
	res := guided.Result{
		Frames: []can.Frame{{ID: 0x215, Len: 1, Data: [8]byte{0x20}}},
		Oracle: "unlock-ack",
	}
	var buf bytes.Buffer
	if err := res.WriteReplayLog(&buf, "can0", core.MinInterval); err != nil {
		t.Fatal(err)
	}
	trace, err := capture.ParseLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay log does not parse: %v", err)
	}
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{Check: bcm.CheckByteOnly, AckUnlock: true})
	port := bench.AttachFuzzer("replayer")
	capture.Replay(sched, port, trace)
	sched.RunFor(time.Second)
	if !bench.BCM.Unlocked() {
		t.Fatal("replayed reproducer did not unlock the bench")
	}
}

func TestMinimizeNoReproReturnsError(t *testing.T) {
	m := &guided.Minimizer{
		Factory: benchFactory(bcm.CheckByteOnly),
		Seed:    1,
		Oracle:  "unlock-ack",
	}
	// A lock command never unlocks: the full input fails to reproduce.
	_, err := m.Minimize([]can.Frame{{ID: 0x215, Len: 1, Data: [8]byte{0x10}}})
	if !errors.Is(err, guided.ErrNoRepro) {
		t.Fatalf("err = %v, want ErrNoRepro", err)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	exp := guidedExp(t, bcm.CheckByteOnly, 9)
	finding, ok := exp.Campaign.RunUntilFinding(10 * time.Minute)
	if !ok {
		t.Fatal("no finding")
	}
	run := func() ([]string, int) {
		m := &guided.Minimizer{Factory: benchFactory(bcm.CheckByteOnly), Seed: 9, Oracle: finding.Verdict.Oracle}
		res, err := m.Minimize(finding.Recent)
		if err != nil {
			t.Fatal(err)
		}
		return res.CorpusLines(), res.Executions
	}
	l1, e1 := run()
	l2, e2 := run()
	if !reflect.DeepEqual(l1, l2) || e1 != e2 {
		t.Fatalf("minimizer diverged: %v (%d execs) vs %v (%d execs)", l1, e1, l2, e2)
	}
}

// TestFleetGuidedDeterministicAcrossWorkers extends the fleet's
// byte-identical guarantee to guided mode: merged corpus and report JSON at
// workers=1 must equal NumCPU workers, and the minimized reproducer derived
// from the fleet's results must match byte-for-byte too.
func TestFleetGuidedDeterministicAcrossWorkers(t *testing.T) {
	runFleet := func(workers int) *fleet.Report {
		rep, err := fleet.Run(fleet.Config{
			Trials:      4,
			Workers:     workers,
			BaseSeed:    77,
			MaxPerTrial: 10 * time.Minute,
		}, guidedFactory(bcm.CheckByteOnly))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	minimizeFirst := func(rep *fleet.Report) []string {
		for _, tr := range rep.Results {
			if tr.Status != fleet.StatusFinding {
				continue
			}
			// Rebuild the trial world and re-run to recover the trigger
			// window, then minimize it.
			w, err := guidedFactory(bcm.CheckByteOnly)(fleet.TrialSpec{Index: tr.Trial, Seed: tr.Seed})
			if err != nil {
				t.Fatal(err)
			}
			finding, ok := w.Campaign.RunUntilFinding(10 * time.Minute)
			if !ok {
				t.Fatal("replayed trial lost its finding")
			}
			m := &guided.Minimizer{Factory: benchFactory(bcm.CheckByteOnly), Seed: tr.Seed, Oracle: finding.Verdict.Oracle}
			res, err := m.Minimize(finding.Recent)
			if err != nil {
				t.Fatal(err)
			}
			return res.CorpusLines()
		}
		t.Fatal("no finding trial in fleet")
		return nil
	}

	seq := runFleet(1)
	par := runFleet(runtime.NumCPU())

	var seqJSON, parJSON bytes.Buffer
	if err := seq.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Fatal("guided fleet reports differ between workers=1 and NumCPU")
	}
	if len(seq.MergedCorpus) == 0 {
		t.Fatal("merged corpus empty")
	}
	if !reflect.DeepEqual(seq.MergedCorpus, par.MergedCorpus) {
		t.Fatalf("merged corpora differ:\n%v\n%v", seq.MergedCorpus, par.MergedCorpus)
	}
	if !reflect.DeepEqual(minimizeFirst(seq), minimizeFirst(par)) {
		t.Fatal("minimized reproducers differ between worker counts")
	}
}
