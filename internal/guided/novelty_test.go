package guided

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/can"
	"repro/internal/core"
)

func coreFormat(f can.Frame) string { return core.FormatCorpusFrame(f) }

func TestNoveltyMapBounded(t *testing.T) {
	var n noveltyMap
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10*mapBits; i++ {
		n.observe(rng.Uint64())
	}
	if c := n.count(); c > mapBits {
		t.Fatalf("count %d exceeds map size %d", c, mapBits)
	}
}

func TestNoveltyMapObserveOnce(t *testing.T) {
	var n noveltyMap
	if !n.observe(42) {
		t.Fatal("first observation not novel")
	}
	if n.observe(42) {
		t.Fatal("repeat observation reported novel")
	}
	if n.count() != 1 {
		t.Fatalf("count = %d, want 1", n.count())
	}
}

func TestBucketize(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {7, 4},
		{8, 5}, {15, 5}, {16, 6}, {31, 6}, {32, 7}, {127, 7},
		{128, 8}, {1 << 40, 8},
	}
	for _, c := range cases {
		if got := bucketize(c.in); got != c.want {
			t.Errorf("bucketize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHashFeatureOrderSensitive(t *testing.T) {
	if hashFeature(featProbe, 1, 2) == hashFeature(featProbe, 2, 1) {
		t.Fatal("hashFeature must not be symmetric in its parts")
	}
	if hashFeature(featProbe, 1, 2) == hashFeature(featResponse, 1, 2) {
		t.Fatal("feature kinds must separate hash spaces")
	}
}

func TestCorpusAddDedupeAndEnergy(t *testing.T) {
	c := newCorpus()
	f := can.Frame{ID: 0x215, Len: 1, Data: [8]byte{0x20}}
	if !c.add(f, 1) {
		t.Fatal("first add not admitted")
	}
	if c.add(f, 3) {
		t.Fatal("duplicate admitted twice")
	}
	if c.size() != 1 {
		t.Fatalf("size = %d, want 1", c.size())
	}
	if e := c.entries[0].energy; e != 4 {
		t.Fatalf("energy = %d, want 4 (1+3)", e)
	}
}

func TestCorpusEvictionDeterministic(t *testing.T) {
	c := newCorpus()
	for i := 0; i < maxCorpus; i++ {
		f := can.Frame{ID: can.ID(i % 0x7FF), Len: 2, Data: [8]byte{byte(i), byte(i >> 8)}}
		c.add(f, uint64(2+i)) // strictly increasing energy
	}
	low := c.entries[0].frame // lowest energy: the first entry
	c.add(can.Frame{ID: 0x7FF, Len: 1, Data: [8]byte{0xFF}}, 1)
	if c.size() != maxCorpus {
		t.Fatalf("size = %d, want cap %d", c.size(), maxCorpus)
	}
	for _, e := range c.entries {
		if e.frame == low {
			t.Fatal("lowest-energy entry not evicted")
		}
	}
	// index map must stay consistent after the shift.
	for key, i := range c.index {
		if got := coreFormat(c.entries[i].frame); got != key {
			t.Fatalf("index[%q] -> entry %q", key, got)
		}
	}
}

func TestCorpusPickEnergyWeighted(t *testing.T) {
	c := newCorpus()
	hot := can.Frame{ID: 0x215, Len: 1, Data: [8]byte{0x20}}
	cold := can.Frame{ID: 0x100, Len: 1, Data: [8]byte{0x01}}
	c.add(hot, 99)
	c.add(cold, 1)
	rng := rand.New(rand.NewSource(7))
	hits := 0
	for i := 0; i < 1000; i++ {
		if c.pick(rng) == hot {
			hits++
		}
	}
	if hits < 900 {
		t.Fatalf("hot frame picked %d/1000, want >= 900 at 99:1 energy", hits)
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	lines := []string{"215#205F010000012000", "100#", "7FF#DEADBEEF"}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, lines); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadCorpus(strings.NewReader(buf.String() + "\n# comment\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(lines) {
		t.Fatalf("read %d frames, want %d", len(frames), len(lines))
	}
	for i, f := range frames {
		if coreFormat(f) != lines[i] {
			t.Errorf("frame %d = %q, want %q", i, coreFormat(f), lines[i])
		}
	}
	if _, err := ReadCorpus(strings.NewReader("bogus line\n")); err == nil {
		t.Fatal("malformed corpus accepted")
	}
}

func TestMergeCorporaIndexOrder(t *testing.T) {
	got := MergeCorpora([][]string{
		{"215#20", "100#01"},
		{"100#01", "300#FF"},
		nil,
		{"215#20"},
	})
	want := []string{"215#20", "100#01", "300#FF"}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}
