package guided_test

import (
	"testing"
	"time"

	"repro/internal/bcm"
	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/guided"
	"repro/internal/signal"
	"repro/internal/testbench"
)

func TestIntrospectionNil(t *testing.T) {
	var intr *guided.Introspection
	if intr.Register() != nil {
		t.Error("nil Introspection.Register should return a nil slot")
	}
	if s := intr.Snapshot(); s.Engines != 0 || s.Execs != 0 {
		t.Errorf("nil Introspection.Snapshot not zero: %+v", s)
	}
}

func TestIntrospectionTracksGuidedRun(t *testing.T) {
	intr := guided.NewIntrospection()
	exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
		core.Config{Seed: 9, TargetIDs: []can.ID{signal.IDBodyCommand}},
		guided.WithIntrospection(intr))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exp.Run(30 * time.Minute); !ok {
		t.Fatal("guided unlock did not land within the budget")
	}

	s := intr.Snapshot()
	if s.Engines != 1 {
		t.Fatalf("engines = %d, want 1", s.Engines)
	}
	if s.NoveltyHits != exp.Engine.NoveltyHits() {
		t.Errorf("noveltyHits = %d, want %d", s.NoveltyHits, exp.Engine.NoveltyHits())
	}
	if s.Mutations != exp.Engine.Mutations() || s.Explorations != exp.Engine.Explorations() {
		t.Errorf("mutations/explorations = %d/%d, want %d/%d",
			s.Mutations, s.Explorations, exp.Engine.Mutations(), exp.Engine.Explorations())
	}
	if s.Mutations+s.Explorations != s.Execs {
		t.Errorf("mutations %d + explorations %d != execs %d", s.Mutations, s.Explorations, s.Execs)
	}
	if s.MutateRatio <= 0 || s.MutateRatio >= 1 {
		t.Errorf("mutateRatio = %v, want strictly between 0 and 1 (explore 1-in-8)", s.MutateRatio)
	}
	if s.NoveltyBitsSet <= 0 || s.NoveltySaturation <= 0 || s.NoveltySaturation > 1 {
		t.Errorf("novelty saturation implausible: bits=%d saturation=%v", s.NoveltyBitsSet, s.NoveltySaturation)
	}
	if s.CorpusSize <= 0 {
		t.Errorf("corpusSize = %d, want > 0 after a feedback run", s.CorpusSize)
	}
	if s.ExecsSinceNoveltyMin != exp.Engine.ExecsSinceNovelty() {
		t.Errorf("execsSinceNoveltyMin = %d, want %d", s.ExecsSinceNoveltyMin, exp.Engine.ExecsSinceNovelty())
	}
	// The engine runs thousands of ticks past energyPublishEvery, so the
	// amortised energy snapshot must have been published.
	if s.Energy.Sum == 0 || s.Energy.Max == 0 {
		t.Errorf("energy quantiles empty: %+v", s.Energy)
	}
	if s.Energy.P25 > s.Energy.P50 || s.Energy.P50 > s.Energy.P90 || s.Energy.P90 > s.Energy.Max {
		t.Errorf("energy quantiles not monotonic: %+v", s.Energy)
	}
}

func TestIntrospectionAggregatesEngines(t *testing.T) {
	intr := guided.NewIntrospection()
	var want uint64
	for seed := int64(1); seed <= 3; seed++ {
		exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{Check: bcm.CheckByteOnly},
			core.Config{Seed: seed, TargetIDs: []can.ID{signal.IDBodyCommand}},
			guided.WithIntrospection(intr))
		if err != nil {
			t.Fatal(err)
		}
		exp.Run(30 * time.Minute)
		want += exp.Engine.Mutations() + exp.Engine.Explorations()
	}
	s := intr.Snapshot()
	if s.Engines != 3 {
		t.Fatalf("engines = %d, want 3", s.Engines)
	}
	if s.Execs != want {
		t.Errorf("aggregated execs = %d, want the per-engine sum %d", s.Execs, want)
	}
}
