// Package cluster models the instrument cluster of the target vehicle: the
// component the paper fuzzed on the bench and damaged (§VI, Fig 9).
//
// Behaviour reproduced from the paper's account:
//
//   - Fuzzing "immediately resulted in Malfunction Indicator Lights (MIL)
//     illumination, warning sounds and erratic gauge needles": the cluster
//     lights MILs and chimes when decoded values are implausible or when
//     expected periodic messages disappear, and its needles follow whatever
//     the bus says.
//   - "a digital display began to display the word crash at a regular
//     rate... Cycling the power to the cluster removes any MILs that became
//     illuminated. Unfortunately the crash message would not clear": a
//     latent firmware defect in the display-control handler latches a
//     corrupted state flag into emulated EEPROM. MILs are volatile; the
//     EEPROM flag is not, so only a (secured) service-tool write clears it.
//   - The paper's Fig 8 shows the simulator happily displaying a negative
//     engine RPM. The cluster's display path decodes the 16-bit tachometer
//     raw value as SIGNED while the transmitting ECU encodes it unsigned —
//     a real-world class of DBC mismatch. Normal traffic never exceeds
//     8000 rpm (raw 32000, below the sign bit), so the bug is invisible
//     until fuzz data arrives.
package cluster

import (
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/ecu"
	"repro/internal/signal"
	"repro/internal/uds"
)

// IDDisplayControl is the identifier of the (undocumented) display-control
// message whose handler carries the latent defect. It is not part of the
// public signal database: the paper stresses that "additional features...
// may be present. An undocumented application programming interface (API),
// as well as an untested code path, could be exploitable" (§III-3).
const IDDisplayControl can.ID = 0x6B0

// crashNVKey is the EEPROM location the defective handler corrupts.
const crashNVKey = "display.crashflag"

// DIDCrashFlag is the UDS data identifier a service tool uses to read and
// (after security access) clear the crash flag.
const DIDCrashFlag uds.DID = 0xD0C1

// messageTimeout is the supervision window for periodic inputs; missing
// EngineData for longer lights the communication MIL.
const messageTimeout = 500 * time.Millisecond

// MIL lamp names used by the cluster.
const (
	MILEngineComm  = "ENGINE-COMM"
	MILImplausible = "IMPLAUSIBLE-DATA"
	MILGeneric     = "CHECK-VEHICLE"
)

// Cluster is the instrument cluster application.
type Cluster struct {
	ecu *ecu.ECU
	db  *signal.Database

	// Displayed values: whatever the last decode said, no validation.
	rpm     float64 // signed-decoded tachometer value (Fig 8 defect)
	speed   float64
	fuel    float64
	coolant float64

	lastEngineData time.Duration
	crashShows     uint64 // times the CRASH text rendered (paper: regular rate)
	sup            bool   // supervision enabled after first engine frame
}

// New builds the cluster application on an ECU runtime.
func New(e *ecu.ECU) *Cluster {
	c := &Cluster{ecu: e, db: signal.VehicleDB()}
	e.Handle(signal.IDEngineData, c.onEngineData)
	e.Handle(signal.IDClusterGauges, c.onGauges)
	e.Handle(signal.IDFuel, c.onFuel)
	e.Handle(IDDisplayControl, c.onDisplayControl)
	e.Periodic(100*time.Millisecond, c.refresh)
	e.OnPowerOn(func() {
		// Volatile display state resets; the EEPROM crash flag does not.
		c.rpm, c.speed, c.fuel, c.coolant = 0, 0, 0, 0
		c.sup = false
	})
	return c
}

// ECU exposes the underlying runtime (MILs, chimes, power control).
func (c *Cluster) ECU() *ecu.ECU { return c.ecu }

// DisplayedRPM returns the tachometer needle value. It can be negative
// under fuzzing (Fig 8) because of the signed/unsigned decode mismatch.
func (c *Cluster) DisplayedRPM() float64 { return c.rpm }

// DisplayedSpeed returns the speedometer needle value in km/h.
func (c *Cluster) DisplayedSpeed() float64 { return c.speed }

// DisplayedFuel returns the fuel gauge value in percent.
func (c *Cluster) DisplayedFuel() float64 { return c.fuel }

// DisplayedCoolant returns the coolant gauge value in degC.
func (c *Cluster) DisplayedCoolant() float64 { return c.coolant }

// DisplayText returns what the digital display currently shows — the
// rendered output a camera pointed at the bench would capture (the paper's
// §VII suggestion to "use video processing software, for example OpenCV,
// to monitor the cyber-physical actions"). Normal operation renders the
// odometer line; a latched crash renders the factory burn-in string.
func (c *Cluster) DisplayText() string {
	if !c.ecu.Powered() {
		return ""
	}
	if c.Crashed() {
		return "CRASH"
	}
	return "ODO 042193 km"
}

// Crashed reports whether the persistent crash flag is latched in EEPROM.
func (c *Cluster) Crashed() bool {
	v, ok := c.ecu.NVRead(crashNVKey)
	return ok && len(v) > 0 && v[0] != 0
}

// CrashDisplays returns how many times the display has rendered the CRASH
// text ("at a regular rate" once latched).
func (c *Cluster) CrashDisplays() uint64 { return c.crashShows }

// ClearCrashFlag is the service-tool EEPROM fix (exposed via the secured
// UDS DID; see DIDEntries).
func (c *Cluster) ClearCrashFlag() { c.ecu.NVDelete(crashNVKey) }

// DIDEntries returns the UDS data identifiers the cluster exposes,
// including the secured write that clears the crash flag.
func (c *Cluster) DIDEntries() map[uds.DID]uds.DIDEntry {
	return map[uds.DID]uds.DIDEntry{
		DIDCrashFlag: {
			Read: func() []byte {
				if c.Crashed() {
					return []byte{1}
				}
				return []byte{0}
			},
			Write: func(v []byte) error {
				if len(v) == 1 && v[0] == 0 {
					c.ClearCrashFlag()
				}
				return nil
			},
			Secured: true,
		},
	}
}

// signedTachoDecode decodes the 16-bit raw tachometer field as signed —
// the display path's latent mismatch with the unsigned encoder.
func signedTachoDecode(f can.Frame, startByte int) float64 {
	if int(f.Len) < startByte+2 {
		return 0
	}
	raw := int16(uint16(f.Data[startByte]) | uint16(f.Data[startByte+1])<<8)
	return float64(raw) * 0.25
}

func (c *Cluster) onEngineData(m bus.Message) {
	c.lastEngineData = c.ecu.Now()
	c.sup = true
	c.ecu.SetMIL(MILEngineComm, false)

	def, _ := c.db.ByID(signal.IDEngineData)
	vals := def.Decode(m.Frame)
	c.rpm = signedTachoDecode(m.Frame, 0)
	c.coolant = vals["CoolantTemp"]

	c.checkPlausibility(def, vals)
}

func (c *Cluster) onGauges(m bus.Message) {
	// Direct needle-control message ("the message known to affect the
	// instrument cluster gauge needles", §VI).
	def, _ := c.db.ByID(signal.IDClusterGauges)
	vals := def.Decode(m.Frame)
	c.rpm = signedTachoDecode(m.Frame, 0)
	c.speed = vals["SpeedoKPH"]
	c.checkPlausibility(def, vals)
}

func (c *Cluster) onFuel(m bus.Message) {
	def, _ := c.db.ByID(signal.IDFuel)
	vals := def.Decode(m.Frame)
	c.fuel = vals["FuelLevel"]
	c.checkPlausibility(def, vals)
}

// checkPlausibility lights the implausible-data MIL and chimes when any
// decoded signal leaves its documented range — the immediate MIL + warning
// sound reaction the paper reports.
func (c *Cluster) checkPlausibility(def *signal.MessageDef, vals map[string]float64) {
	for _, s := range def.Signals {
		if !s.Plausible(vals[s.Name]) {
			c.ecu.SetMIL(MILImplausible, true)
			c.ecu.SetMIL(MILGeneric, true)
			c.ecu.Chime()
			return
		}
	}
	// The signed display path can go negative even when every DB-decoded
	// signal looks fine; treat a negative needle as implausible too.
	if c.rpm < 0 {
		c.ecu.SetMIL(MILImplausible, true)
		c.ecu.Chime()
	}
}

// onDisplayControl is the defective undocumented handler. Intent: a 4-byte
// message {page, brightness, textIdx, checksum} selects a stock display
// text. Defect: when the frame is short AND the page byte has its top bit
// set, the handler computes a text index from uninitialised stack bytes and
// stores the resulting out-of-range value into EEPROM, latching index 0 —
// the factory "CRASH" burn-in test string.
func (c *Cluster) onDisplayControl(m bus.Message) {
	f := m.Frame
	if f.Len == 4 && f.Data[3] == f.Data[0]^f.Data[1]^f.Data[2] {
		// Well-formed request: display a stock text, nothing persisted.
		return
	}
	// Malformed traffic reaches the defect only on this branch.
	if f.Len >= 1 && f.Len < 4 && f.Data[0]&0x80 != 0 {
		c.ecu.NVWrite(crashNVKey, []byte{1})
		c.ecu.LogFault("B1D00", "display text index out of range; EEPROM state corrupted")
	}
}

// refresh runs the 100 ms display task: renders the CRASH text when the
// latched flag is set and re-checks message supervision.
func (c *Cluster) refresh() {
	if c.Crashed() {
		c.crashShows++
	}
	if c.sup && c.ecu.Now()-c.lastEngineData > messageTimeout {
		c.ecu.SetMIL(MILEngineComm, true)
		c.ecu.Chime()
	}
}
