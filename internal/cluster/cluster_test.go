package cluster

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/ecu"
	"repro/internal/signal"
)

func rig(t *testing.T) (*clock.Scheduler, *Cluster, *bus.Port) {
	t.Helper()
	s := clock.New()
	b := bus.New(s)
	e := ecu.New("cluster", s, b.Connect("cluster"))
	c := New(e)
	peer := b.Connect("peer")
	return s, c, peer
}

func sendEngineData(t *testing.T, peer *bus.Port, rpm, coolant float64) {
	t.Helper()
	db := signal.VehicleDB()
	def, _ := db.ByName("EngineData")
	f, err := def.Encode(map[string]float64{"EngineRPM": rpm, "CoolantTemp": coolant})
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.Send(f); err != nil {
		t.Fatal(err)
	}
}

func TestTachoFollowsEngineData(t *testing.T) {
	s, c, peer := rig(t)
	sendEngineData(t, peer, 3000, 90)
	s.RunUntil(100 * time.Millisecond)
	if got := c.DisplayedRPM(); got != 3000 {
		t.Fatalf("DisplayedRPM = %v, want 3000", got)
	}
	if got := c.DisplayedCoolant(); got != 90 {
		t.Fatalf("DisplayedCoolant = %v, want 90", got)
	}
}

func TestGaugesMessageDrivesNeedles(t *testing.T) {
	s, c, peer := rig(t)
	db := signal.VehicleDB()
	def, _ := db.ByName("ClusterGauges")
	f, err := def.Encode(map[string]float64{"TachoRPM": 2500, "SpeedoKPH": 88})
	if err != nil {
		t.Fatal(err)
	}
	peer.Send(f)
	s.RunUntil(100 * time.Millisecond)
	if c.DisplayedRPM() != 2500 {
		t.Fatalf("rpm = %v", c.DisplayedRPM())
	}
	if c.DisplayedSpeed() != 88 {
		t.Fatalf("speed = %v", c.DisplayedSpeed())
	}
}

func TestFuelGauge(t *testing.T) {
	s, c, peer := rig(t)
	db := signal.VehicleDB()
	def, _ := db.ByName("Fuel")
	f, _ := def.Encode(map[string]float64{"FuelLevel": 62})
	peer.Send(f)
	s.RunUntil(100 * time.Millisecond)
	if c.DisplayedFuel() != 62 {
		t.Fatalf("fuel = %v", c.DisplayedFuel())
	}
}

func TestNegativeRPMViaSignedDecodeMismatch(t *testing.T) {
	// Fig 8: a fuzzed frame with the sign bit set in the 16-bit tacho field
	// displays as a negative RPM. Raw 0xF000 little-endian = bytes 00 F0.
	s, c, peer := rig(t)
	peer.Send(can.MustNew(signal.IDClusterGauges, []byte{0x00, 0xF0, 0, 0, 0, 0, 0, 0}))
	s.RunUntil(100 * time.Millisecond)
	if c.DisplayedRPM() >= 0 {
		t.Fatalf("DisplayedRPM = %v, want negative", c.DisplayedRPM())
	}
	// Normal traffic can never trip the mismatch: 8000 rpm is raw 32000.
	sendEngineData(t, peer, 8000, 90)
	s.RunUntil(200 * time.Millisecond)
	if c.DisplayedRPM() != 8000 {
		t.Fatalf("DisplayedRPM = %v, want 8000", c.DisplayedRPM())
	}
}

func TestImplausibleValueLightsMILAndChimes(t *testing.T) {
	s, c, peer := rig(t)
	// Coolant raw 0xFF decodes to 215 degC — outside the documented range.
	peer.Send(can.MustNew(signal.IDEngineData, []byte{0x10, 0x27, 0x00, 0xFF, 0, 0, 0, 0}))
	s.RunUntil(100 * time.Millisecond)
	if !c.ECU().MILOn(MILImplausible) {
		t.Fatal("implausible-data MIL not lit")
	}
	if c.ECU().Chimes() == 0 {
		t.Fatal("no warning chime")
	}
}

func TestEngineCommTimeoutMIL(t *testing.T) {
	s, c, peer := rig(t)
	sendEngineData(t, peer, 900, 80)
	s.RunUntil(200 * time.Millisecond)
	if c.ECU().MILOn(MILEngineComm) {
		t.Fatal("comm MIL lit while traffic flowing")
	}
	// Stop traffic for > 500 ms.
	s.RunUntil(time.Second)
	if !c.ECU().MILOn(MILEngineComm) {
		t.Fatal("comm MIL not lit after timeout")
	}
	// Traffic resumes: MIL clears.
	sendEngineData(t, peer, 900, 80)
	s.RunUntil(1100 * time.Millisecond)
	if c.ECU().MILOn(MILEngineComm) {
		t.Fatal("comm MIL stuck after traffic resumed")
	}
}

func TestWellFormedDisplayControlHarmless(t *testing.T) {
	s, c, peer := rig(t)
	// Valid 4-byte request with checksum.
	peer.Send(can.MustNew(IDDisplayControl, []byte{0x01, 0x40, 0x02, 0x01 ^ 0x40 ^ 0x02}))
	s.RunUntil(time.Second)
	if c.Crashed() {
		t.Fatal("well-formed display request latched crash flag")
	}
}

func TestMalformedDisplayControlLatchesCrash(t *testing.T) {
	s, c, peer := rig(t)
	// Short frame with page top bit set: the latent defect path.
	peer.Send(can.MustNew(IDDisplayControl, []byte{0x80, 0x01}))
	s.RunUntil(time.Second)
	if !c.Crashed() {
		t.Fatal("defect frame did not latch crash flag")
	}
	if c.CrashDisplays() == 0 {
		t.Fatal("CRASH text not rendering at a regular rate")
	}
	if len(c.ECU().Faults()) == 0 {
		t.Fatal("no fault logged")
	}
}

func TestCrashSurvivesPowerCycleMILsDoNot(t *testing.T) {
	// The paper's central Fig 9 observation.
	s, c, peer := rig(t)
	// Light a MIL and latch the crash.
	peer.Send(can.MustNew(signal.IDEngineData, []byte{0x10, 0x27, 0x00, 0xFF, 0, 0, 0, 0}))
	peer.Send(can.MustNew(IDDisplayControl, []byte{0xC0}))
	s.RunUntil(time.Second)
	if !c.ECU().MILOn(MILImplausible) || !c.Crashed() {
		t.Fatal("precondition failed")
	}
	c.ECU().PowerCycle()
	s.RunUntil(2 * time.Second)
	if c.ECU().MILOn(MILImplausible) {
		t.Fatal("MIL survived power cycle")
	}
	if !c.Crashed() {
		t.Fatal("crash flag cleared by power cycle (should persist in EEPROM)")
	}
}

func TestClearCrashFlagViaServiceEntry(t *testing.T) {
	s, c, peer := rig(t)
	peer.Send(can.MustNew(IDDisplayControl, []byte{0xFF, 0xEE}))
	s.RunUntil(time.Second)
	if !c.Crashed() {
		t.Fatal("precondition failed")
	}
	entries := c.DIDEntries()
	entry := entries[DIDCrashFlag]
	if got := entry.Read(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DID read = %v, want [1]", got)
	}
	if !entry.Secured {
		t.Fatal("crash-flag DID must require security access")
	}
	if err := entry.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if c.Crashed() {
		t.Fatal("service write did not clear crash flag")
	}
	if got := entry.Read(); got[0] != 0 {
		t.Fatalf("DID read after clear = %v", got)
	}
}

func TestDisplayResetsVolatileStateOnPowerCycle(t *testing.T) {
	s, c, peer := rig(t)
	sendEngineData(t, peer, 4000, 90)
	s.RunUntil(100 * time.Millisecond)
	if c.DisplayedRPM() != 4000 {
		t.Fatal("precondition failed")
	}
	c.ECU().PowerCycle()
	if c.DisplayedRPM() != 0 {
		t.Fatalf("needle position survived power cycle: %v", c.DisplayedRPM())
	}
}

func TestShortGaugeFrameDoesNotPanic(t *testing.T) {
	s, c, peer := rig(t)
	peer.Send(can.MustNew(signal.IDClusterGauges, []byte{0x55})) // 1-byte frame
	s.RunUntil(100 * time.Millisecond)
	_ = c.DisplayedRPM() // must simply not panic and treat missing as 0
}

func TestDisplayTextStates(t *testing.T) {
	s, c, peer := rig(t)
	if c.DisplayText() == "" || c.DisplayText() == "CRASH" {
		t.Fatalf("normal display = %q", c.DisplayText())
	}
	peer.Send(can.MustNew(IDDisplayControl, []byte{0x80}))
	s.RunUntil(time.Second)
	if c.DisplayText() != "CRASH" {
		t.Fatalf("display after defect = %q", c.DisplayText())
	}
	c.ECU().PowerOff()
	if c.DisplayText() != "" {
		t.Fatal("powered-off display should be dark")
	}
	c.ECU().PowerOn()
	if c.DisplayText() != "CRASH" {
		t.Fatal("crash text should survive the power cycle")
	}
}
