package oracle

import (
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

// instrumented decorates an Oracle with telemetry: every Observe call and
// every verdict is counted under the oracle's name. The wrapped oracle's
// behaviour is unchanged.
type instrumented struct {
	Oracle
	mObserved *telemetry.Counter
	mVerdicts *telemetry.Counter
}

// Instrumented wraps o so its observation and verdict counts are exported
// through the registry as oracle_observations_total{oracle=...} and
// oracle_verdicts_total{oracle=...}. With a nil Telemetry the oracle is
// returned unwrapped.
func Instrumented(o Oracle, t *telemetry.Telemetry) Oracle {
	if t == nil || o == nil {
		return o
	}
	lbl := telemetry.Label{Key: "oracle", Value: o.Name()}
	return &instrumented{
		Oracle:    o,
		mObserved: t.Registry.Counter("oracle_observations_total", "Frames fed to this oracle.", lbl),
		mVerdicts: t.Registry.Counter("oracle_verdicts_total", "Verdicts this oracle reported.", lbl),
	}
}

// Start implements Oracle, interposing the verdict counter on the reporter.
func (i *instrumented) Start(sched *clock.Scheduler, report Reporter) {
	i.Oracle.Start(sched, func(v Verdict) {
		i.mVerdicts.Inc()
		report(v)
	})
}

// Observe implements Oracle.
func (i *instrumented) Observe(m bus.Message) {
	i.mObserved.Inc()
	i.Oracle.Observe(m)
}
