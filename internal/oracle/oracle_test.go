package oracle

import (
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/signal"
)

func msg(f can.Frame, at time.Duration) bus.Message {
	return bus.Message{Frame: f, Time: at, Origin: "test"}
}

func TestAckFiresOnMatch(t *testing.T) {
	s := clock.New()
	var got []Verdict
	a := &Ack{Match: func(f can.Frame) bool { return f.ID == 0x321 }}
	a.Start(s, func(v Verdict) { got = append(got, v) })
	a.Observe(msg(can.MustNew(0x100, nil), 0))
	a.Observe(msg(can.MustNew(0x321, nil), 0))
	if len(got) != 1 {
		t.Fatalf("verdicts = %d", len(got))
	}
	if got[0].Oracle != "ack" {
		t.Fatalf("oracle = %q", got[0].Oracle)
	}
}

func TestAckOnceSuppressesRepeats(t *testing.T) {
	s := clock.New()
	count := 0
	a := &Ack{Once: true, Match: func(can.Frame) bool { return true }}
	a.Start(s, func(Verdict) { count++ })
	for i := 0; i < 5; i++ {
		a.Observe(msg(can.MustNew(1, nil), 0))
	}
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
}

func TestAckRepeatsWithoutOnce(t *testing.T) {
	s := clock.New()
	count := 0
	a := &Ack{Match: func(can.Frame) bool { return true }}
	a.Start(s, func(Verdict) { count++ })
	for i := 0; i < 5; i++ {
		a.Observe(msg(can.MustNew(1, nil), 0))
	}
	if count != 5 {
		t.Fatalf("fired %d times, want 5", count)
	}
}

func TestAckCustomName(t *testing.T) {
	a := &Ack{OracleName: "unlock-ack"}
	if a.Name() != "unlock-ack" {
		t.Fatal("custom name ignored")
	}
}

func TestAckStopSilences(t *testing.T) {
	s := clock.New()
	count := 0
	a := &Ack{Match: func(can.Frame) bool { return true }}
	a.Start(s, func(Verdict) { count++ })
	a.Stop()
	a.Observe(msg(can.MustNew(1, nil), 0))
	if count != 0 {
		t.Fatal("stopped oracle fired")
	}
}

func TestSignalRangeFiresOnImplausible(t *testing.T) {
	s := clock.New()
	db := signal.VehicleDB()
	var got []Verdict
	o := &SignalRange{DB: db}
	o.Start(s, func(v Verdict) { got = append(got, v) })

	def, _ := db.ByName("EngineData")
	good, _ := def.Encode(map[string]float64{"EngineRPM": 900, "CoolantTemp": 80})
	o.Observe(msg(good, 0))
	if len(got) != 0 {
		t.Fatalf("fired on plausible frame: %v", got)
	}
	// Coolant raw 0xFF -> 215 degC, beyond Max 150.
	bad := can.MustNew(signal.IDEngineData, []byte{0, 0, 0, 0xFF, 0, 0, 0, 0})
	o.Observe(msg(bad, 0))
	if len(got) != 1 {
		t.Fatalf("verdicts = %d", len(got))
	}
}

func TestSignalRangeRestrictedSignals(t *testing.T) {
	s := clock.New()
	db := signal.VehicleDB()
	count := 0
	o := &SignalRange{DB: db, Signals: map[string]bool{"EngineRPM": true}}
	o.Start(s, func(Verdict) { count++ })
	// Implausible coolant but plausible RPM: restricted oracle stays quiet.
	bad := can.MustNew(signal.IDEngineData, []byte{0, 0, 0, 0xFF, 0, 0, 0, 0})
	o.Observe(msg(bad, 0))
	if count != 0 {
		t.Fatal("fired on unmonitored signal")
	}
}

func TestSignalRangeIgnoresUnknownIDs(t *testing.T) {
	s := clock.New()
	o := &SignalRange{DB: signal.VehicleDB()}
	count := 0
	o.Start(s, func(Verdict) { count++ })
	o.Observe(msg(can.MustNew(0x6FF, []byte{0xFF}), 0))
	if count != 0 {
		t.Fatal("fired on unknown identifier")
	}
}

func TestHeartbeatArmsOnFirstObservation(t *testing.T) {
	s := clock.New()
	var got []Verdict
	h := &Heartbeat{ID: 0x110, Window: 100 * time.Millisecond}
	h.Start(s, func(v Verdict) { got = append(got, v) })
	// Without any observed frame, no firing ever.
	s.RunUntil(time.Second)
	if len(got) != 0 {
		t.Fatal("fired before first frame")
	}
	h.Observe(msg(can.MustNew(0x110, nil), s.Now()))
	s.RunUntil(s.Now() + 50*time.Millisecond)
	h.Observe(msg(can.MustNew(0x110, nil), s.Now()))
	s.RunUntil(s.Now() + 50*time.Millisecond)
	if len(got) != 0 {
		t.Fatal("fired while heartbeats arriving")
	}
	s.RunUntil(s.Now() + 200*time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("verdicts = %d after silence", len(got))
	}
}

func TestHeartbeatIgnoresOtherIDs(t *testing.T) {
	s := clock.New()
	var got []Verdict
	h := &Heartbeat{ID: 0x110, Window: 100 * time.Millisecond}
	h.Start(s, func(v Verdict) { got = append(got, v) })
	h.Observe(msg(can.MustNew(0x110, nil), 0))
	for i := 0; i < 10; i++ {
		s.RunUntil(s.Now() + 50*time.Millisecond)
		h.Observe(msg(can.MustNew(0x999&0x7FF, nil), s.Now()))
	}
	if len(got) != 1 {
		t.Fatalf("verdicts = %d; other IDs should not feed the supervised heartbeat", len(got))
	}
}

func TestHeartbeatStopCancelsTimer(t *testing.T) {
	s := clock.New()
	count := 0
	h := &Heartbeat{ID: 0x110, Window: 50 * time.Millisecond}
	h.Start(s, func(Verdict) { count++ })
	h.Observe(msg(can.MustNew(0x110, nil), 0))
	h.Stop()
	s.RunUntil(time.Second)
	if count != 0 {
		t.Fatal("stopped heartbeat fired")
	}
}

func TestProbePolls(t *testing.T) {
	s := clock.New()
	var got []Verdict
	state := ""
	p := &Probe{Interval: 10 * time.Millisecond, Check: func() string { return state }}
	p.Start(s, func(v Verdict) { got = append(got, v) })
	s.RunUntil(100 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("fired with empty detail")
	}
	state = "broken"
	s.RunUntil(150 * time.Millisecond)
	if len(got) < 4 {
		t.Fatalf("verdicts = %d, want repeated firings without Once", len(got))
	}
	p.Stop()
	n := len(got)
	s.RunUntil(time.Second)
	if len(got) != n {
		t.Fatal("stopped probe fired")
	}
}

func TestProbeDefaultInterval(t *testing.T) {
	s := clock.New()
	count := 0
	p := &Probe{Check: func() string { return "x" }, Once: true}
	p.Start(s, func(Verdict) { count++ })
	s.RunUntil(time.Second)
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestPhysicalOracle(t *testing.T) {
	s := clock.New()
	var got []Verdict
	led := false // locked
	p := Physical("door-led", 10*time.Millisecond, func() bool { return led }, false, "door unlocked")
	p.Start(s, func(v Verdict) { got = append(got, v) })
	s.RunUntil(100 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("fired while LED at baseline")
	}
	led = true
	s.RunUntil(200 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("verdicts = %d", len(got))
	}
	if got[0].Oracle != "door-led" || got[0].Detail != "door unlocked" {
		t.Fatalf("verdict = %+v", got[0])
	}
}

func TestDisplayOracle(t *testing.T) {
	s := clock.New()
	var got []Verdict
	text := "ODO 042193 km"
	d := Display("camera", 10*time.Millisecond, func() string { return text }, "ODO 042193 km")
	d.Start(s, func(v Verdict) { got = append(got, v) })
	s.RunUntil(100 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("fired on baseline text")
	}
	text = "" // display dark (power cycle): not a deviation
	s.RunUntil(200 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("fired on dark display")
	}
	text = "CRASH"
	s.RunUntil(300 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("verdicts = %d", len(got))
	}
	if got[0].Detail != "display shows CRASH" {
		t.Fatalf("detail = %q", got[0].Detail)
	}
}
