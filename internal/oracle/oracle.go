// Package oracle implements the test-oracle strategies the paper surveys
// for automotive fuzzing (§II). The oracle problem — "how to determine, or
// not, the correct responses of a system" — is the central obstacle to
// automating CPS security testing; the paper lists the monitoring channels
// proposed by prior work, and this package implements each class:
//
//   - Ack: network communication monitoring (the unlock-acknowledgement
//     message the augmented testbench broadcast for Table V).
//   - SignalRange: direct monitoring of decoded system signals.
//   - Heartbeat: liveness of expected periodic traffic (a crashed or
//     bus-off ECU goes silent).
//   - Probe: XCP-style remote access to ECU internals, polled.
//   - Physical: an external sensor watching a cyber-physical output (the
//     bench LED, "a sensor on the door lock").
package oracle

import (
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/signal"
)

// Verdict is one oracle firing.
type Verdict struct {
	// Time is the virtual instant the oracle fired.
	Time time.Duration
	// Oracle names the oracle that fired.
	Oracle string
	// Detail describes what was detected.
	Detail string
}

// Reporter receives verdicts from oracles.
type Reporter func(Verdict)

// Oracle watches the system under test and reports findings. Observe is
// fed every frame the monitor sees; Start installs timers and the report
// sink; Stop cancels timers.
type Oracle interface {
	// Name identifies the oracle in findings.
	Name() string
	// Start arms the oracle.
	Start(sched *clock.Scheduler, report Reporter)
	// Observe feeds one observed frame.
	Observe(m bus.Message)
	// Stop disarms the oracle.
	Stop()
}

// --- Ack oracle ----------------------------------------------------------

// Ack fires when a frame matching the predicate appears on the bus:
// network-communication monitoring.
type Ack struct {
	// OracleName overrides the default name.
	OracleName string
	// Match is the frame predicate.
	Match func(can.Frame) bool
	// Once suppresses repeat firings.
	Once bool

	report Reporter
	sched  *clock.Scheduler
	fired  bool
}

// Name implements Oracle.
func (a *Ack) Name() string {
	if a.OracleName != "" {
		return a.OracleName
	}
	return "ack"
}

// Start implements Oracle.
func (a *Ack) Start(sched *clock.Scheduler, report Reporter) {
	a.sched = sched
	a.report = report
	a.fired = false
}

// Observe implements Oracle.
func (a *Ack) Observe(m bus.Message) {
	if a.report == nil || a.Match == nil || !a.Match(m.Frame) {
		return
	}
	if a.Once && a.fired {
		return
	}
	a.fired = true
	a.report(Verdict{Time: a.sched.Now(), Oracle: a.Name(), Detail: "matched frame " + m.Frame.String()})
}

// Stop implements Oracle.
func (a *Ack) Stop() { a.report = nil }

// --- Signal range oracle ---------------------------------------------------

// SignalRange fires when a decoded signal leaves its documented physical
// range: direct monitoring of system signals inside the simulator.
type SignalRange struct {
	// DB is the signal database used for decoding.
	DB *signal.Database
	// Signals optionally restricts checking to the named signals; empty
	// checks every ranged signal.
	Signals map[string]bool

	report Reporter
	sched  *clock.Scheduler
}

// Name implements Oracle.
func (o *SignalRange) Name() string { return "signal-range" }

// Start implements Oracle.
func (o *SignalRange) Start(sched *clock.Scheduler, report Reporter) {
	o.sched = sched
	o.report = report
}

// Observe implements Oracle.
func (o *SignalRange) Observe(m bus.Message) {
	if o.report == nil || o.DB == nil {
		return
	}
	def, ok := o.DB.ByID(m.Frame.ID)
	if !ok {
		return
	}
	vals := def.Decode(m.Frame)
	for _, s := range def.Signals {
		if len(o.Signals) > 0 && !o.Signals[s.Name] {
			continue
		}
		if v := vals[s.Name]; !s.Plausible(v) {
			o.report(Verdict{
				Time:   o.sched.Now(),
				Oracle: o.Name(),
				Detail: def.Name + "." + s.Name + " out of range",
			})
			return
		}
	}
}

// Stop implements Oracle.
func (o *SignalRange) Stop() { o.report = nil }

// --- Heartbeat oracle -------------------------------------------------------

// Heartbeat fires when an expected periodic identifier goes silent for
// longer than Window: the liveness check that detects a crashed or bus-off
// ECU.
type Heartbeat struct {
	// ID is the supervised identifier.
	ID can.ID
	// Window is the allowed silence (e.g. 3x the nominal cycle).
	Window time.Duration

	report Reporter
	sched  *clock.Scheduler
	armed  bool

	// per is the silence deadline: a re-armable Periodic allocated once
	// per scheduler and restarted on every supervised frame. The old
	// implementation scheduled a fresh After timer (heap node handle plus
	// closure) per observation — the heartbeat supervises a 10 ms status
	// broadcast, so that was two allocations every 10 virtual
	// milliseconds for the whole campaign.
	per      *clock.Periodic
	perSched *clock.Scheduler
}

// Name implements Oracle.
func (h *Heartbeat) Name() string { return "heartbeat" }

// Start implements Oracle. Supervision begins at the first observed frame,
// so attaching to a not-yet-started system does not false-alarm.
func (h *Heartbeat) Start(sched *clock.Scheduler, report Reporter) {
	h.sched = sched
	h.report = report
	h.armed = false
	if h.per == nil || h.perSched != sched {
		w := h.Window
		if w <= 0 {
			w = 1 // degenerate window: expire at the next instant
		}
		h.perSched = sched
		h.per = sched.NewPeriodic(w, h.expire)
	}
}

// expire fires the silence verdict. Stopping the periodic first makes it
// single-shot — one verdict per silence, re-armed by the next frame —
// matching the old one-shot After timer.
func (h *Heartbeat) expire() {
	h.per.Stop()
	if h.report != nil && h.armed {
		h.report(Verdict{
			Time:   h.sched.Now(),
			Oracle: h.Name(),
			Detail: "identifier " + h.ID.String() + " silent",
		})
	}
}

// Observe implements Oracle.
func (h *Heartbeat) Observe(m bus.Message) {
	if h.report == nil || m.Frame.ID != h.ID {
		return
	}
	h.armed = true
	h.per.Stop()
	h.per.Start()
}

// Stop implements Oracle.
func (h *Heartbeat) Stop() {
	h.report = nil
	if h.per != nil {
		h.per.Stop()
	}
}

// --- Probe oracle ------------------------------------------------------------

// Probe polls internal state of the system under test, like the XCP remote
// measurement channel discussed in §II (with the paper's caveat that such
// channels are themselves attack surface).
type Probe struct {
	// OracleName overrides the default name.
	OracleName string
	// Interval is the polling period.
	Interval time.Duration
	// Check returns a non-empty detail string when the probed condition is
	// detected.
	Check func() string
	// Once suppresses repeat firings.
	Once bool

	report Reporter
	sched  *clock.Scheduler
	fired  bool

	// per is the polling loop: a re-armable Periodic allocated on the
	// first Start against a scheduler and reused by every later Start, so
	// a pooled world re-arms its probes without allocating.
	per      *clock.Periodic
	perSched *clock.Scheduler
}

// Name implements Oracle.
func (p *Probe) Name() string {
	if p.OracleName != "" {
		return p.OracleName
	}
	return "probe"
}

// Start implements Oracle.
func (p *Probe) Start(sched *clock.Scheduler, report Reporter) {
	p.sched = sched
	p.report = report
	p.fired = false
	if p.per == nil || p.perSched != sched {
		interval := p.Interval
		if interval <= 0 {
			interval = 10 * time.Millisecond
		}
		p.perSched = sched
		p.per = sched.NewPeriodic(interval, p.poll)
	}
	p.per.Start()
}

// poll is the periodic body.
func (p *Probe) poll() {
	if p.report == nil || p.Check == nil {
		return
	}
	if p.Once && p.fired {
		return
	}
	if detail := p.Check(); detail != "" {
		p.fired = true
		p.report(Verdict{Time: p.sched.Now(), Oracle: p.Name(), Detail: detail})
	}
}

// Observe implements Oracle (probes do not watch traffic).
func (p *Probe) Observe(bus.Message) {}

// Stop implements Oracle.
func (p *Probe) Stop() {
	p.report = nil
	if p.per != nil {
		p.per.Stop()
	}
}

// Physical returns a Probe configured as an external-sensor oracle: sample
// reads the cyber-physical output (LED, lock actuator, gauge needle) and
// the oracle fires when it differs from the expected baseline.
func Physical(name string, interval time.Duration, sample func() bool, expected bool, detail string) *Probe {
	return &Probe{
		OracleName: name,
		Interval:   interval,
		Once:       true,
		Check: func() string {
			if sample() != expected {
				return detail
			}
			return ""
		},
	}
}

// Display returns a Probe configured as a camera-style oracle over a
// rendered display (the paper's §VII suggestion of OpenCV monitoring):
// render samples the visible text, and the oracle fires when it differs
// from the recorded baseline. An empty render (display dark, e.g. during a
// power cycle) is not a deviation — the camera just sees a blank screen.
func Display(name string, interval time.Duration, render func() string, baseline string) *Probe {
	return &Probe{
		OracleName: name,
		Interval:   interval,
		Once:       true,
		Check: func() string {
			got := render()
			if got != "" && got != baseline {
				return "display shows " + got
			}
			return ""
		},
	}
}

// Crash returns a Probe watching an ECU's crash flag (crashed reads
// ECU.Crashed, detail reads ECU.CrashDetail): the XCP-style equivalent of a
// debugger noticing the target died. It fires once, when the flag first
// reads true.
func Crash(name string, interval time.Duration, crashed func() bool, detail func() string) *Probe {
	return &Probe{
		OracleName: name,
		Interval:   interval,
		Once:       true,
		Check: func() string {
			if crashed() {
				return "ecu crashed: " + detail()
			}
			return ""
		},
	}
}
