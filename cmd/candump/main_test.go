package main

import (
	"strings"
	"testing"
)

func TestRunCapturesLog(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dur", "1s", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("captured only %d lines in 1s", len(lines))
	}
	if !strings.Contains(lines[0], "body0") || !strings.Contains(lines[0], "#") {
		t.Fatalf("unexpected log line %q", lines[0])
	}
}

func TestRunIDsOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dur", "2s", "-ids"}, &sb); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(sb.String())
	if len(ids) < 5 {
		t.Fatalf("only %d distinct ids", len(ids))
	}
}

func TestRunPowertrainBus(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dur", "500ms", "-bus", "powertrain", "-n", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pt0") {
		t.Fatal("powertrain interface name missing")
	}
}

func TestRunRejectsUnknownBus(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bus", "nope"}, &sb); err == nil {
		t.Fatal("unknown bus accepted")
	}
}
