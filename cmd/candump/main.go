// Command candump captures traffic from the simulated vehicle and writes a
// candump-style text log — the capture step of the paper's methodology
// ("capture the network packets while operating a vehicle feature") whose
// output seeds targeted fuzzing.
//
// Usage:
//
//	candump [-dur 5s] [-seed 1] [-bus body|powertrain] [-n 0] [-o file] [-ids]
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "candump", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("candump", flag.ContinueOnError)
	dur := fs.Duration("dur", 5*time.Second, "virtual capture duration")
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	busName := fs.String("bus", "body", "bus to capture: body or powertrain")
	limit := fs.Int("n", 0, "stop after n frames (0 = unlimited)")
	out := fs.String("o", "", "write log to file instead of stdout")
	idsOnly := fs.Bool("ids", false, "print only the distinct identifiers observed")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "candump")
	if err != nil {
		return err
	}
	logger = l

	which := vehicle.OBDBody
	iface := "body0"
	switch *busName {
	case "body":
	case "powertrain":
		which, iface = vehicle.OBDPowertrain, "pt0"
	default:
		return fmt.Errorf("unknown bus %q", *busName)
	}

	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: *seed})
	rec := capture.NewRecorder(pick(v, which), *limit)
	sched.RunUntil(*dur)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *idsOnly {
		for _, id := range rec.Trace().IDs() {
			fmt.Fprintln(w, id)
		}
		return nil
	}
	return capture.WriteLog(w, rec.Trace(), iface)
}

// pick returns the requested bus of the vehicle.
func pick(v *vehicle.Vehicle, which vehicle.OBDBus) *bus.Bus {
	if which == vehicle.OBDPowertrain {
		return v.Powertrain
	}
	return v.Body
}
