// Command cansim runs the simulated target vehicle and prints either a
// live traffic log or sampled instrument readings — the stand-in for
// watching the Vector vehicle simulator of the paper's Figs 6-8.
//
// Usage:
//
//	cansim [-dur 10s] [-seed 1] [-bus body|powertrain] [-mode traffic|signals]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/vehicle"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cansim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cansim", flag.ContinueOnError)
	dur := fs.Duration("dur", 10*time.Second, "virtual duration to simulate")
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	busName := fs.String("bus", "body", "bus to observe: body or powertrain")
	mode := fs.String("mode", "signals", "output: traffic (frame log) or signals (gauge samples)")
	throttle := fs.Float64("throttle", 0, "drive with this accelerator position (0-100%)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	which := vehicle.OBDBody
	switch *busName {
	case "body":
	case "powertrain":
		which = vehicle.OBDPowertrain
	default:
		return fmt.Errorf("unknown bus %q", *busName)
	}

	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: *seed})
	if *throttle > 0 {
		v.Drive(*throttle)
	}

	switch *mode {
	case "traffic":
		v.TapOBD(which, func(m bus.Message) {
			fmt.Println(capture.Record{Time: m.Time, Frame: m.Frame, Origin: m.Origin})
		})
		sched.RunUntil(*dur)
	case "signals":
		fmt.Printf("%10s %12s %12s %10s %12s\n", "t", "rpm", "speed", "fuel%", "coolantC")
		end := *dur
		for sched.Now() < end {
			sched.RunFor(500 * time.Millisecond)
			fmt.Printf("%10v %12.1f %12.1f %10.1f %12.1f\n",
				sched.Now().Round(time.Millisecond),
				v.Cluster.DisplayedRPM(), v.Cluster.DisplayedSpeed(),
				v.Cluster.DisplayedFuel(), v.Cluster.DisplayedCoolant())
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	st := v.Body.Stats()
	fmt.Fprintf(os.Stderr, "body bus: %d frames, load %.1f%%; powertrain load %.1f%%\n",
		st.FramesDelivered, v.Body.Load()*100, v.Powertrain.Load()*100)
	return nil
}
