// Command cansim runs the simulated target vehicle and prints either a
// live traffic log or sampled instrument readings — the stand-in for
// watching the Vector vehicle simulator of the paper's Figs 6-8.
//
// Usage:
//
//	cansim [-dur 10s] [-seed 1] [-bus body|powertrain] [-mode traffic|signals]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"repro/internal/bus"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "cansim", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:]); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cansim", flag.ContinueOnError)
	dur := fs.Duration("dur", 10*time.Second, "virtual duration to simulate")
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	busName := fs.String("bus", "body", "bus to observe: body or powertrain")
	mode := fs.String("mode", "signals", "output: traffic (frame log) or signals (gauge samples)")
	throttle := fs.Float64("throttle", 0, "drive with this accelerator position (0-100%)")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /healthz and /trace.json on this address")
	metricsHold := fs.Duration("metrics-hold", 0, "keep the metrics endpoint up this long (wall time) after the simulation ends")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "cansim")
	if err != nil {
		return err
	}
	logger = l

	which := vehicle.OBDBody
	switch *busName {
	case "body":
	case "powertrain":
		which = vehicle.OBDPowertrain
	default:
		return fmt.Errorf("unknown bus %q", *busName)
	}

	sched := clock.New()
	v := vehicle.New(sched, vehicle.Config{Seed: *seed})
	if *metricsAddr != "" {
		tel := telemetry.New(0)
		v.Instrument(tel)
		srv, bound, err := telemetry.Serve(*metricsAddr, tel)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer telemetry.Shutdown(srv, time.Second)
		logger.Info("metrics endpoint up", "addr", bound,
			"routes", "/metrics /metrics.json /trace.json /healthz")
	}
	if *throttle > 0 {
		v.Drive(*throttle)
	}

	switch *mode {
	case "traffic":
		v.TapOBD(which, func(m bus.Message) {
			fmt.Println(capture.Record{Time: m.Time, Frame: m.Frame, Origin: m.Origin})
		})
		sched.RunUntil(*dur)
	case "signals":
		fmt.Printf("%10s %12s %12s %10s %12s\n", "t", "rpm", "speed", "fuel%", "coolantC")
		end := *dur
		for sched.Now() < end {
			sched.RunFor(500 * time.Millisecond)
			fmt.Printf("%10v %12.1f %12.1f %10.1f %12.1f\n",
				sched.Now().Round(time.Millisecond),
				v.Cluster.DisplayedRPM(), v.Cluster.DisplayedSpeed(),
				v.Cluster.DisplayedFuel(), v.Cluster.DisplayedCoolant())
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	st := v.Body.Stats()
	logger.Info("simulation finished",
		"bodyFrames", st.FramesDelivered,
		"bodyLoad", fmt.Sprintf("%.1f%%", v.Body.Load()*100),
		"powertrainLoad", fmt.Sprintf("%.1f%%", v.Powertrain.Load()*100))
	if *metricsAddr != "" && *metricsHold > 0 {
		// Virtual time outruns wall time by orders of magnitude, so without
		// a hold the endpoint would vanish before anyone could scrape it.
		// SIGINT ends the hold early; the deferred Shutdown then drains
		// in-flight scrapes instead of cutting them off.
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		logger.Info("holding metrics endpoint", "for", *metricsHold)
		telemetry.Hold(ctx, *metricsHold)
	}
	return nil
}
