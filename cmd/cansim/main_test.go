package main

import "testing"

func TestRunSignalsMode(t *testing.T) {
	if err := run([]string{"-dur", "2s", "-mode", "signals"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrafficMode(t *testing.T) {
	if err := run([]string{"-dur", "200ms", "-mode", "traffic", "-bus", "powertrain"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-bus", "nope"}); err == nil {
		t.Fatal("unknown bus accepted")
	}
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunDriving(t *testing.T) {
	if err := run([]string{"-dur", "15s", "-throttle", "50"}); err != nil {
		t.Fatal(err)
	}
}
