// Command cansend is the reproduction of the paper's PC lock/unlock app
// (Fig 13): it drives the bench-top testbed's head unit to lock or unlock
// the doors and reports the LED state, or injects a single raw frame.
//
// Usage:
//
//	cansend -cmd unlock            # app path: head unit relays 0x215
//	cansend -cmd lock
//	cansend -id 215 -data 205F01000001 20   # raw injection (hex)
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "cansend", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:]); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cansend", flag.ContinueOnError)
	cmd := fs.String("cmd", "", "app command: lock or unlock")
	rawID := fs.String("id", "", "raw injection: hex identifier (e.g. 215)")
	rawData := fs.String("data", "", "raw injection: hex payload (e.g. 205F01000001 20)")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "cansend")
	if err != nil {
		return err
	}
	logger = l

	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})

	switch {
	case *cmd != "":
		var err error
		switch *cmd {
		case "unlock":
			err = bench.HeadUnit.AppUnlock(testbench.AppToken)
		case "lock":
			err = bench.HeadUnit.AppLock(testbench.AppToken)
		default:
			return fmt.Errorf("unknown command %q", *cmd)
		}
		if err != nil {
			return err
		}
	case *rawID != "":
		id64, err := strconv.ParseUint(*rawID, 16, 16)
		if err != nil || id64 > can.MaxID {
			return fmt.Errorf("bad identifier %q", *rawID)
		}
		data, err := hex.DecodeString(strings.ReplaceAll(*rawData, " ", ""))
		if err != nil {
			return fmt.Errorf("bad payload: %w", err)
		}
		f, err := can.New(can.ID(id64), data)
		if err != nil {
			return err
		}
		if err := bench.AttachFuzzer("injector").Send(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -cmd or -id (see -h)")
	}

	sched.RunUntil(100 * time.Millisecond)
	led := "OFF (locked)"
	if bench.BCM.Unlocked() {
		led = "ON (unlocked)"
	}
	fmt.Printf("lock LED: %s\n", led)
	if bench.HeadUnit.AckSeen() {
		fmt.Println("unlock acknowledgement observed on the bus")
	}
	return nil
}
