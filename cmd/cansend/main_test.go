package main

import "testing"

func TestRunUnlockCommand(t *testing.T) {
	if err := run([]string{"-cmd", "unlock"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLockCommand(t *testing.T) {
	if err := run([]string{"-cmd", "lock"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRawInjection(t *testing.T) {
	if err := run([]string{"-id", "215", "-data", "205F01000001 20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                            // neither cmd nor id
		{"-cmd", "explode"},           // unknown command
		{"-id", "ZZZ"},                // bad identifier
		{"-id", "FFFF"},               // out of range
		{"-id", "215", "-data", "XY"}, // bad hex
		{"-id", "215", "-data", "000102030405060708"}, // too long
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
