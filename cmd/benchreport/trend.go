package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The -trend mode renders the committed BENCH_*.json snapshots (written by
// cmd/benchperf) as markdown trend tables — frames/sec and allocs/op per
// benchmark over time — so performance history is readable straight from
// the repo without re-running anything.

// benchResult mirrors cmd/benchperf's Result (duplicated rather than
// imported: main packages cannot import each other, and the JSON schema is
// the stable contract between the two tools).
type benchResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"nsPerOp"`
	AllocsPerOp  int64   `json:"allocsPerOp"`
	BytesPerOp   int64   `json:"bytesPerOp"`
	FramesPerSec float64 `json:"framesPerSec,omitempty"`
}

// benchFile mirrors cmd/benchperf's File.
type benchFile struct {
	Date          string        `json:"date"`
	GoVersion     string        `json:"goVersion"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Quick         bool          `json:"quick"`
	FindingsCount int           `json:"findingsCount,omitempty"`
	Results       []benchResult `json:"results"`
}

// loadBenchFiles reads every BENCH_*.json under dir, sorted by filename
// (the date-stamped naming makes that chronological).
func loadBenchFiles(dir string) ([]benchFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var files []benchFile
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if f.Date == "" {
			// Fall back to the filename stamp so an old snapshot without the
			// field still lands in the right column.
			f.Date = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		}
		files = append(files, f)
	}
	return files, nil
}

// runTrend renders the markdown trend report to w.
func runTrend(w io.Writer, dir string) error {
	files, err := loadBenchFiles(dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json snapshots under %s (run cmd/benchperf first)", dir)
	}

	// Benchmark rows in first-seen order, so new benchmarks append at the
	// bottom instead of reshuffling the table.
	var names []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, r := range f.Results {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}
	lookup := func(f benchFile, name string) (benchResult, bool) {
		for _, r := range f.Results {
			if r.Name == name {
				return r, true
			}
		}
		return benchResult{}, false
	}

	fmt.Fprintf(w, "# Benchmark trend (%d snapshots)\n", len(files))

	fmt.Fprintf(w, "\n## Throughput (frames/sec)\n\n")
	writeTrendTable(w, files, names, func(r benchResult) (string, bool) {
		if r.FramesPerSec <= 0 {
			return "", false
		}
		return fmt.Sprintf("%.0f", r.FramesPerSec), true
	}, lookup)

	fmt.Fprintf(w, "\n## Allocations (allocs/op)\n\n")
	writeTrendTable(w, files, names, func(r benchResult) (string, bool) {
		return fmt.Sprintf("%d", r.AllocsPerOp), true
	}, lookup)

	fmt.Fprintf(w, "\n## Latency (ns/op)\n\n")
	writeTrendTable(w, files, names, func(r benchResult) (string, bool) {
		return fmt.Sprintf("%.0f", r.NsPerOp), true
	}, lookup)

	writeFindingsTrend(w, files)
	return nil
}

// writeFindingsTrend renders the regression-corpus size per snapshot (one
// row, dates across) when any snapshot was stamped with -findings-db; old
// snapshots without the field render as empty cells.
func writeFindingsTrend(w io.Writer, files []benchFile) {
	any := false
	for _, f := range files {
		if f.FindingsCount > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\n## Findings corpus (deduplicated records)\n\n")
	header, rule, row := "| |", "| --- |", "| findings |"
	for _, f := range files {
		label := f.Date
		if f.Quick {
			label += " (quick)"
		}
		header += " " + label + " |"
		rule += " ---: |"
		cell := ""
		if f.FindingsCount > 0 {
			cell = fmt.Sprintf("%d", f.FindingsCount)
		}
		row += " " + cell + " |"
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, rule)
	fmt.Fprintln(w, row)
}

// writeTrendTable emits one markdown table: benchmarks down, snapshot dates
// across, cell values picked by the metric function (second return false
// means the metric does not apply to that benchmark). Rows where no
// snapshot has the metric are dropped.
func writeTrendTable(w io.Writer, files []benchFile, names []string,
	metric func(benchResult) (string, bool),
	lookup func(benchFile, string) (benchResult, bool)) {
	header := "| Benchmark |"
	rule := "| --- |"
	for _, f := range files {
		label := f.Date
		if f.Quick {
			label += " (quick)"
		}
		header += " " + label + " |"
		rule += " ---: |"
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, rule)
	for _, name := range names {
		row := "| " + name + " |"
		any := false
		for _, f := range files {
			cell := ""
			if r, ok := lookup(f, name); ok {
				if v, applies := metric(r); applies {
					cell = v
					any = true
				}
			}
			row += " " + cell + " |"
		}
		if any {
			fmt.Fprintln(w, row)
		}
	}
}
