// Command benchreport regenerates every table and figure of the paper in
// one run, printing each in a layout close to the original. It is the
// human-readable companion to the root bench_test.go harness.
//
// Usage:
//
//	benchreport [-quick] [-runs 12] [-seed 100]
//	benchreport -trend [-trend-dir .]
//
// -quick trims the expensive experiments (Table V and the ablations run
// fewer repetitions) so the whole report finishes in well under a minute.
// -trend skips the experiments entirely and instead renders the committed
// BENCH_*.json performance snapshots (from cmd/benchperf) as markdown
// trend tables: frames/sec, allocs/op and ns/op per benchmark over time.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// logger is the shared structured stderr logger of the tool.
var logger = telemetry.NewCLILogger(os.Stderr, "benchreport", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:]); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "fewer repetitions for the slow experiments")
	runs := fs.Int("runs", 12, "Table V runs per variant (paper: 12)")
	seed := fs.Int64("seed", 100, "base seed")
	trend := fs.Bool("trend", false, "render the committed BENCH_*.json snapshots as markdown trend tables instead")
	trendDir := fs.String("trend-dir", ".", "directory holding the BENCH_*.json snapshots")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trend {
		return runTrend(os.Stdout, *trendDir)
	}
	if *quick && *runs > 3 {
		*runs = 3
	}

	fmt.Println("== Figure 1: testing methods in the automotive industry ==")
	for _, r := range experiments.Figure1() {
		fmt.Printf("  %-28s %5.0f%%  %s\n", r.Method, r.Share, bar(r.Share))
	}

	fmt.Println("\n== Table I: automotive CAN fuzzing tools ==")
	fmt.Printf("  %-16s %-12s %s\n", "Tool", "License", "Approach")
	for _, r := range experiments.Table1() {
		fmt.Printf("  %-16s %-12s %s\n", r.Tool, r.License, r.Approach)
	}

	fmt.Println("\n== Table II: example CAN packets captured from the car ==")
	fmt.Printf("  %-12s %-5s %-6s %s\n", "Time (ms)", "Id", "Length", "Data")
	for _, r := range experiments.Table2(*seed, 5*time.Second, 5) {
		fmt.Printf("  %-12.3f %-5s %-6d % X\n",
			float64(r.Time)/float64(time.Millisecond), r.Frame.ID, r.Frame.Len,
			r.Frame.Data[:r.Frame.Len])
	}

	fmt.Println("\n== Table III: fuzzing elements of a CAN data packet ==")
	fmt.Printf("  %-16s %-20s %s\n", "Item", "Range", "Description")
	for _, r := range experiments.Table3() {
		fmt.Printf("  %-16s %-20s %s\n", r.Item, r.Range, r.Description)
	}
	fmt.Println("  combinatorial explosion (§V):")
	for _, c := range experiments.Table3Combinatorics() {
		fmt.Printf("    %-40s %12d combos  ~%v @1ms\n", c.Space, c.Combinations, c.AtOneMs.Round(time.Minute))
	}

	fmt.Println("\n== Table IV: sample random CAN packet output from the fuzzer ==")
	fmt.Printf("  %-12s %-5s %-6s %s\n", "Time (ms)", "Id", "Length", "Data")
	for _, r := range experiments.Table4(*seed, 6) {
		fmt.Printf("  %-12.3f %-5s %-6d % X\n",
			float64(r.Time)/float64(time.Millisecond), r.Frame.ID, r.Frame.Len,
			r.Frame.Data[:r.Frame.Len])
	}

	fmt.Println("\n== Figure 4: mean byte values, 100000 captured vehicle messages ==")
	f4 := experiments.Figure4(*seed, 100000)
	printMeans(f4)

	fmt.Println("\n== Figure 5: mean byte values, 66144 fuzzer messages ==")
	f5 := experiments.Figure5(*seed, 66144)
	printMeans(f5)
	fmt.Printf("  contrast: vehicle spread %.1f vs fuzzer spread %.1f\n", f4.Spread, f5.Spread)

	fmt.Println("\n== Figure 6: normal vehicle signals (10 s idle) ==")
	f6 := experiments.Figure6(*seed, 10*time.Second)
	printSeries(f6)

	fmt.Println("\n== Figure 7: effect of fuzzing on signals (5 s fuzzed) ==")
	f7 := experiments.Figure7(*seed, 5*time.Second)
	printSeries(f7)
	fmt.Printf("  erratic factor (RPM stddev fuzzed/normal): %.1fx\n",
		f7.Get("DisplayedRPM").StdDev()/maxF(f6.Get("DisplayedRPM").StdDev(), 1))

	fmt.Println("\n== Figure 8: physically invalid value on the simulator ==")
	if f8, ok := experiments.Figure8(*seed, 30*time.Minute); ok {
		fmt.Printf("  cluster displayed %.1f rpm after %v (%d fuzz frames)\n",
			f8.NegativeRPM, f8.Elapsed.Round(time.Millisecond), f8.FramesSent)
	} else {
		fmt.Println("  no invalid value within deadline")
	}

	fmt.Println("\n== Figure 9: crashing a vehicle component ==")
	if f9, ok := experiments.Figure9(*seed, 2*time.Hour); ok {
		fmt.Printf("  crash latched after %v (%d frames); MILs lit: %d, chimes: %d\n",
			f9.TimeToCrash.Round(time.Millisecond), f9.FramesToCrash,
			f9.MILsDuringFuzz, f9.ChimesDuringFuzz)
		fmt.Printf("  after power cycle: MILs %d (paper: clear), crash persists: %v (paper: yes)\n",
			f9.MILsAfterPowerCycle, f9.CrashAfterPowerCycle)
		fmt.Printf("  after secured UDS service write: crash persists: %v\n", f9.CrashAfterServiceFix)
	} else {
		fmt.Println("  cluster did not crash within deadline")
	}

	fmt.Println("\n== Table V: fuzzer run times to activate unlock ==")
	fmt.Printf("  (%d runs per variant, seeds %d..%d)\n", *runs, *seed, *seed+int64(*runs)-1)
	for _, row := range experiments.Table5(*seed, *runs, 12*time.Hour) {
		fmt.Printf("  %-36s times(s): %s\n", row.Message, row.Stats.Seconds())
		fmt.Printf("  %-36s mean %ds  median %ds  min %ds  max %ds  timeouts %d\n", "",
			int(row.Stats.Mean()/time.Second), int(row.Stats.Median()/time.Second),
			int(row.Stats.Min()/time.Second), int(row.Stats.Max()/time.Second), row.TimedOut)
	}

	fmt.Println("\n== Ablation: targeted vs blind fuzzing ==")
	tb := experiments.AblationTargetedVsBlind(*seed, minI(*runs, 3), 12*time.Hour)
	fmt.Printf("  blind mean %v, targeted mean %v, speedup %.0fx\n",
		tb.Blind.Mean().Round(time.Second), tb.Targeted.Mean().Round(time.Millisecond), tb.SpeedupMean)

	fmt.Println("\n== Ablation: frequency-anomaly IDS ==")
	idsRes := experiments.AblationIDS(*seed)
	fmt.Printf("  quiet minute: %d false positives over %d learned ids\n",
		idsRes.FalsePositives, idsRes.KnownIDs)
	fmt.Printf("  blind fuzz detected after %v (%d fuzz frames)\n",
		idsRes.DetectionLatency.Round(time.Millisecond), idsRes.FramesBeforeDetection)

	fmt.Println("\n== Ablation: CAN FD bulk transfer ==")
	fd := experiments.AblationCANFD(4096)
	fmt.Printf("  4096 bytes: classic %v, FD(BRS 2M) %v, speedup %.1fx\n",
		fd.ClassicTime.Round(time.Microsecond), fd.FDTime.Round(time.Microsecond), fd.Speedup)

	fmt.Println("\n== Ablation: data-link-layer (bit-level) fuzzing ==")
	dl := experiments.AblationDataLinkFuzz(*seed, 10*time.Second)
	fmt.Printf("  %d injected, %d error frames, %d still valid; victim degraded=%v (REC %d)\n",
		dl.Injected, dl.ErrorFrames, dl.StillValid, dl.VictimErrorPassive, dl.VictimREC)

	fmt.Println("\n== Ablation: command authentication ==")
	auth := experiments.AblationAuthentication(*seed, 30*time.Minute)
	fmt.Printf("  plain BCM: fuzzer unlocked=%v after %v\n",
		auth.PlainUnlocked, auth.PlainTime.Round(time.Second))
	fmt.Printf("  MAC BCM:   fuzzer unlocked=%v after %d frames; paired app still works=%v\n",
		auth.AuthUnlocked, auth.AuthFramesTried, auth.LegitWorks)

	fmt.Println("\n== Ablation: gateway protection ==")
	gw := experiments.AblationGateway(*seed, time.Hour)
	fmt.Printf("  forward-all gateway: unlocked=%v after %v\n",
		gw.ForwardAllUnlocked, gw.ForwardAllTime.Round(time.Second))
	fmt.Printf("  allow-list gateway:  unlocked=%v (%d frames blocked)\n",
		gw.AllowListUnlocked, gw.AllowListBlocked)

	return nil
}

func printMeans(r experiments.ByteMeansResult) {
	fmt.Printf("  frames: %d\n", r.Frames)
	for i, m := range r.Means {
		fmt.Printf("    byte %d: %6.1f  %s\n", i+1, m, bar(m/255*100))
	}
	fmt.Printf("  overall mean %.1f, spread %.1f, entropy %.2f bits, chi-square %.0f (uniform@p99: %v)\n",
		r.Overall, r.Spread, r.Entropy, r.ChiSquare, r.Uniform)
}

func printSeries(r experiments.SignalsResult) {
	fmt.Printf("  %-18s %10s %10s %10s %10s %10s\n", "signal", "min", "max", "mean", "stddev", "maxstep")
	for _, s := range r.Series {
		fmt.Printf("  %-18s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			s.Name, s.Min(), s.Max(), s.Mean(), s.StdDev(), s.MaxStep())
	}
}

func bar(pct float64) string {
	n := int(pct / 2)
	if n < 0 {
		n = 0
	}
	if n > 50 {
		n = 50
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
