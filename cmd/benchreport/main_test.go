package main

import "testing"

func TestQuickReportRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("quick report still simulates minutes of virtual fuzzing")
	}
	if err := run([]string{"-quick", "-runs", "1", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestBarClamps(t *testing.T) {
	if bar(-5) != "" {
		t.Fatal("negative bar")
	}
	if len(bar(1000)) != 50 {
		t.Fatal("bar not clamped")
	}
}
