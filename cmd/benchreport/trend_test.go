package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrendFixture(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrend(t *testing.T) {
	dir := t.TempDir()
	writeTrendFixture(t, dir, "BENCH_2026-01-01.json", `{
		"date": "2026-01-01", "goVersion": "go1.24.0", "gomaxprocs": 1,
		"results": [
			{"name": "Campaign", "nsPerOp": 1000, "allocsPerOp": 200, "bytesPerOp": 6000, "framesPerSec": 900000},
			{"name": "Fleet", "nsPerOp": 5000000, "allocsPerOp": 80000, "bytesPerOp": 1000000}
		]
	}`)
	writeTrendFixture(t, dir, "BENCH_2026-02-01.json", `{
		"date": "2026-02-01", "goVersion": "go1.24.0", "gomaxprocs": 1,
		"findingsCount": 3,
		"results": [
			{"name": "Campaign", "nsPerOp": 800, "allocsPerOp": 150, "bytesPerOp": 5000, "framesPerSec": 1200000},
			{"name": "Fleet", "nsPerOp": 4000000, "allocsPerOp": 79000, "bytesPerOp": 900000},
			{"name": "GuidedStep", "nsPerOp": 700, "allocsPerOp": 2, "bytesPerOp": 64}
		]
	}`)

	var out strings.Builder
	if err := runTrend(&out, dir); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	for _, want := range []string{
		"# Benchmark trend (2 snapshots)",
		"## Throughput (frames/sec)",
		"## Allocations (allocs/op)",
		"## Latency (ns/op)",
		"| Benchmark | 2026-01-01 | 2026-02-01 |",
		"| Campaign | 900000 | 1200000 |",
		"| Campaign | 200 | 150 |",
		"| Fleet | 80000 | 79000 |",
		// GuidedStep only exists in the second snapshot: empty first cell.
		"| GuidedStep |  | 2 |",
		// Only the second snapshot was stamped with -findings-db.
		"## Findings corpus (deduplicated records)",
		"| findings |  | 3 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trend output missing %q\n---\n%s", want, got)
		}
	}
	// Fleet has no framesPerSec, so it must not appear in the throughput
	// table; it must still appear in the allocs table (asserted above).
	throughput := got[strings.Index(got, "## Throughput"):strings.Index(got, "## Allocations")]
	if strings.Contains(throughput, "Fleet") {
		t.Errorf("throughput table should omit Fleet (no framesPerSec):\n%s", throughput)
	}
}

func TestRunTrendOmitsFindingsSectionWhenUnstamped(t *testing.T) {
	dir := t.TempDir()
	writeTrendFixture(t, dir, "BENCH_2026-01-01.json", `{
		"date": "2026-01-01", "goVersion": "go1.24.0", "gomaxprocs": 1,
		"results": [{"name": "Campaign", "nsPerOp": 1000, "allocsPerOp": 200, "bytesPerOp": 6000}]
	}`)
	var out strings.Builder
	if err := runTrend(&out, dir); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Findings corpus") {
		t.Errorf("findings section rendered with no stamped snapshot:\n%s", out.String())
	}
}

func TestRunTrendEmptyDir(t *testing.T) {
	var out strings.Builder
	if err := runTrend(&out, t.TempDir()); err == nil {
		t.Fatal("runTrend on an empty dir succeeded, want error")
	}
}

func TestRunTrendOnRepoSnapshots(t *testing.T) {
	// The committed snapshots at the repo root must always render.
	var out strings.Builder
	if err := runTrend(&out, "../.."); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| Campaign |") {
		t.Errorf("repo snapshot trend lacks the Campaign row:\n%s", out.String())
	}
}
