package main

import (
	"time"

	"repro/internal/core"
	"repro/internal/findings"
	"repro/internal/fleet"

	targetPkg "repro/internal/target"
)

// specContext maps the CLI world inputs onto the findings identity
// context — the half of a record's key the trigger frames cannot carry.
func specContext(spec targetPkg.Spec, chaos string) findings.Context {
	return findings.Context{
		Target:   spec.Target,
		Bus:      spec.Bus,
		BCMCheck: targetPkg.CheckModeName(spec.Check),
		Recovery: spec.Recovery,
		Chaos:    chaos,
	}
}

// mergeRunFindings folds a single-run campaign's findings into the
// database at dir: the minimizer's structured record for the finding it
// reproduced (the highest-quality shape, with the canreplay log path as
// provenance), raw trigger-window records for the rest, and generator
// records for environmental findings a frame replay cannot re-create.
func mergeRunFindings(dir string, spec targetPkg.Spec, cfg core.Config, chaos string,
	campaign *core.Campaign, minimized *core.MinimizedTrigger, replayLog string) (int, error) {
	db, err := findings.Open(dir)
	if err != nil {
		return 0, err
	}
	ctx := specContext(spec, chaos)
	gcfg := campaign.Generator().Config() // defaulted config: real interval/mode
	prov := findings.Provenance{Source: "canfuzz", Mode: gcfg.Mode.String()}

	var recs []findings.Record
	observed := campaign.Findings()
	if minimized != nil {
		p := prov
		p.ReplayLog = replayLog
		// The settle mirrors the minimizer default the trigger was confirmed
		// under (guided.Minimizer.Settle).
		recs = append(recs, findings.FromMinimized(minimized, ctx, gcfg.Seed,
			gcfg.Interval, 150*time.Millisecond, p))
		// The minimizer covered the first finding; keep the rest raw.
		if len(observed) > 0 {
			observed = observed[1:]
		}
	}
	for _, f := range observed {
		if findings.GeneratorFinding(ctx, f.Verdict.Oracle) {
			recs = append(recs, findings.FromGenerator(f.Verdict.Oracle, f.Verdict.Detail,
				ctx, gcfg, gcfg.Seed, f.Elapsed+time.Second, prov))
			continue
		}
		frames := make([]string, 0, len(f.Recent))
		for _, fr := range f.Recent {
			frames = append(frames, core.FormatCorpusFrame(fr))
		}
		if len(frames) == 0 {
			continue
		}
		recs = append(recs, findings.FromTrigger(f.Verdict.Oracle, f.Verdict.Detail,
			frames, ctx, gcfg.Seed, gcfg.Interval, prov))
	}
	return db.MergeAll(recs)
}

// mergeFleetFindings folds a fleet report's finding trials into the
// database at dir (fleet mode never carries a chaos plan — the CLI rejects
// the combination).
func mergeFleetFindings(dir string, spec targetPkg.Spec, cfg core.Config, rep *fleet.Report) (int, error) {
	db, err := findings.Open(dir)
	if err != nil {
		return 0, err
	}
	ctx := specContext(spec, "")
	mode := "random"
	if cfg.Mode != 0 {
		mode = cfg.Mode.String()
	}
	prov := findings.Provenance{Source: "canfuzz-fleet", Mode: mode}
	return db.MergeAll(findings.FromFleetReport(rep, ctx, cfg, prov))
}
