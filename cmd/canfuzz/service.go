package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/campaignd"
	"repro/internal/campsrv"
	"repro/internal/fleet"
	"repro/internal/retry"
)

// Service client modes: `canfuzz -submit URL [-watch]` posts this
// invocation's campaign to a canfuzzd service, and `canfuzz -status URL`
// renders the service's /fleet.json as a one-line-per-campaign table.

// submitOpts carries the -submit flags.
type submitOpts struct {
	priority    int
	maxInflight int
	watch       bool
	jsonOut     bool
}

// svcRequest issues one authenticated request against the service.
func svcRequest(method, url, token string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return http.DefaultClient.Do(req)
}

// svcGetJSON fetches and decodes one JSON document.
func svcGetJSON(url, token string, v any) error {
	resp, err := svcRequest(http.MethodGet, url, token, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runSubmit posts the campaign spec to the service and prints the
// assigned campaign ID; with -watch it polls until the campaign completes
// and prints the final report (the exact bytes of /report.json with
// -json, the human summary otherwise).
func runSubmit(ctx context.Context, baseURL, token string, spec campaignd.CampaignSpec, o submitOpts) error {
	base := strings.TrimSuffix(baseURL, "/")
	body, err := json.Marshal(campsrv.Submission{
		Spec: spec, Priority: o.priority, MaxInflight: o.maxInflight,
	})
	if err != nil {
		return err
	}
	resp, err := svcRequest(http.MethodPost, base+"/campaigns", token, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit to %s: %w", baseURL, err)
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit to %s: %s: %s", baseURL, resp.Status, bytes.TrimSpace(respBody))
	}
	var v campsrv.CampaignView
	if err := json.Unmarshal(respBody, &v); err != nil {
		return fmt.Errorf("submit response: %w", err)
	}
	logger.Info("campaign submitted", "campaign", v.ID, "state", v.State,
		"trials", v.Trials, "priority", v.Priority)
	fmt.Println(v.ID)
	if !o.watch {
		return nil
	}
	return watchCampaign(ctx, base, token, v.ID, o.jsonOut)
}

// watchCampaign polls the campaign until it reaches a terminal state,
// then fetches and prints the final report.
func watchCampaign(ctx context.Context, base, token, id string, jsonOut bool) error {
	lastDone := -1
	for {
		var d campsrv.CampaignDetail
		if err := svcGetJSON(base+"/campaigns/"+id, token, &d); err != nil {
			return err
		}
		switch d.State {
		case campsrv.StateCancelled:
			return fmt.Errorf("campaign %s was cancelled", id)
		case campsrv.StateDone:
			if d.Error != "" {
				return fmt.Errorf("campaign %s finished with a server-side defect: %s", id, d.Error)
			}
			return printRemoteReport(base, token, id, jsonOut)
		}
		if d.Progress.TrialsDone != lastDone {
			lastDone = d.Progress.TrialsDone
			logger.Info("campaign progress", "campaign", id, "state", d.State,
				"done", d.Progress.TrialsDone, "total", d.Progress.TrialsTotal,
				"findings", d.Progress.Findings,
				"eta", time.Duration(d.Progress.EtaSeconds*float64(time.Second)).Round(time.Second))
		}
		if err := retry.Sleep(ctx, time.Second); err != nil {
			return err
		}
	}
}

// printRemoteReport fetches /campaigns/{id}/report.json. With jsonOut the
// exact server bytes go to stdout — byte-identical to an in-process
// fleet.Run -json report; otherwise the shared human summary is printed.
func printRemoteReport(base, token, id string, jsonOut bool) error {
	resp, err := svcRequest(http.MethodGet, base+"/campaigns/"+id+"/report.json", token, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("report for %s: %s: %s", id, resp.Status, bytes.TrimSpace(raw))
	}
	if jsonOut {
		_, err := os.Stdout.Write(raw)
		return err
	}
	var rep fleet.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("report for %s: %w", id, err)
	}
	printFleetReport(&rep)
	return nil
}

// runStatus renders the service's /fleet.json as a table: one line per
// campaign with id, state, progress, ETA and findings — the quick
// operator check the dashboardless need.
func runStatus(baseURL, token string) error {
	base := strings.TrimSuffix(baseURL, "/")
	var fleetView campsrv.FleetView
	if err := svcGetJSON(base+"/fleet.json", token, &fleetView); err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %5s  %11s  %8s  %8s\n",
		"ID", "STATE", "PRI", "TRIALS", "ETA", "FINDINGS")
	for _, c := range fleetView.Campaigns {
		eta := "-"
		if c.Progress.EtaSeconds > 0 {
			eta = time.Duration(c.Progress.EtaSeconds * float64(time.Second)).Round(time.Second).String()
		}
		fmt.Printf("%-8s %-10s %5d  %5d/%-5d  %8s  %8d\n",
			c.ID, c.State, c.Priority,
			c.Progress.TrialsDone, c.Progress.TrialsTotal, eta, c.Progress.Findings)
	}
	fmt.Printf("%d active, %d queued, %d trials in flight",
		fleetView.Active, fleetView.Queued, fleetView.Leased)
	if fleetView.ShuttingDown {
		fmt.Print(" (shutting down)")
	}
	fmt.Println()
	return nil
}
