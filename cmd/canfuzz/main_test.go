package main

import (
	"encoding/json"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestRunBenchTargeted(t *testing.T) {
	// Targeted at the command id, a hit lands within a few virtual minutes.
	err := run([]string{"-target", "bench", "-ids", "215", "-dur", "30m", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterTarget(t *testing.T) {
	if err := run([]string{"-target", "cluster", "-dur", "2m", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVehicleTarget(t *testing.T) {
	if err := run([]string{"-target", "vehicle", "-dur", "5s", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-target", "nope"},
		{"-target", "bench", "-bcm-check", "nope"},
		{"-target", "bench", "-ids", "ZZZ"},
		{"-target", "bench", "-ids", "FFFF"},
		{"-target", "bench", "-len-min", "9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunBitsMode(t *testing.T) {
	if err := run([]string{"-mode", "bits", "-dur", "2s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMode(t *testing.T) {
	if err := run([]string{"-target", "bench", "-mode", "sweep", "-sweep-len", "0", "-dur", "3s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMutateModeWithCorpus(t *testing.T) {
	// The paper's recommended workflow: capture traffic, then mutate
	// "around known message ids". Build a corpus file containing the
	// unlock command and let single-bit mutation rediscover unlocking.
	dir := t.TempDir()
	corpus := dir + "/corpus.log"
	log := "(0.001000) body0 215#105F010000012000\n" // the LOCK command (byte0 0x10)
	if err := os.WriteFile(corpus, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	// Lock (0x10) and unlock (0x20) differ in two bits of byte 0, so
	// two-bit mutation can cross between them.
	err := run([]string{"-target", "bench", "-mode", "mutate", "-corpus", corpus,
		"-mutate-bits", "2", "-dur", "30m", "-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunModeErrors(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-mode", "mutate"}); err == nil {
		t.Fatal("mutate without corpus accepted")
	}
	if err := run([]string{"-mode", "mutate", "-corpus", "/nonexistent"}); err == nil {
		t.Fatal("missing corpus file accepted")
	}
	dir := t.TempDir()
	empty := dir + "/empty.log"
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if err := run([]string{"-mode", "mutate", "-corpus", empty}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	bad := dir + "/bad.log"
	os.WriteFile(bad, []byte("garbage\n"), 0o644)
	if err := run([]string{"-mode", "mutate", "-corpus", bad}); err == nil {
		t.Fatal("unparseable corpus accepted")
	}
}

func TestRunWithConfigFileAndJSONReport(t *testing.T) {
	dir := t.TempDir()
	cfgFile := dir + "/campaign.json"
	doc := `{"seed": 2, "targetIds": [533], "lenMin": 1, "lenMax": 7}`
	if err := os.WriteFile(cfgFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-target", "bench", "-config", cfgFile, "-json", "-dur", "30m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConfigFileErrors(t *testing.T) {
	if err := run([]string{"-config", "/nonexistent.json"}); err == nil {
		t.Fatal("missing config accepted")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	os.WriteFile(bad, []byte(`{"mode":"explode"}`), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunFleetMode(t *testing.T) {
	// Targeted fleet: every trial unlocks within virtual seconds.
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "6",
		"-workers", "3", "-dur", "30m", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetModeJSON(t *testing.T) {
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "3",
		"-workers", "2", "-dur", "30m", "-seed", "5", "-json"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetFailFast(t *testing.T) {
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "16",
		"-workers", "2", "-dur", "30m", "-seed", "5", "-fail-fast"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-trials", "0"},
		{"-trials", "-3"},
		{"-workers", "0"},
		{"-workers", "-1"},
		{"-interval", "100us"},
		{"-trials", "2", "-chaos", "seed=1;jam(at=1s)"},
		{"-trials", "2", "-trace", "/tmp/t.json"},
		{"-trials", "2", "-mode", "bits"},
		{"-trials", "2", "-minimize"},
		{"-events", "/tmp/e.jsonl"},
		{"-pprof"},
		{"-log-level", "loud"},
		{"-log-format", "xml"},
		{"-minimize", "-chaos", "seed=1;jam(at=1s)"},
		{"-mode", "bits", "-minimize"},
		{"-mode", "random", "-corpus-out", "/tmp/c.corpus"},
		{"-mode", "mutate", "-corpus-in", "/tmp/c.corpus"},
		{"-mode", "guided", "-corpus-in", "/nonexistent.corpus"},
		{"-trial-timeout", "-1s"},
		{"-resume"},
		{"-worker", "http://x", "-coordinator", ":0"},
		{"-worker", "http://x", "-trials", "3"},
		{"-worker", "http://x", "-seed", "7"},
		{"-coordinator", ":0"},
		{"-coordinator", ":0", "-trials", "2"},
		{"-coordinator", ":0", "-trials", "2", "-events", "/tmp/j.jsonl", "-fail-fast"},
		{"-coordinator", ":0", "-trials", "2", "-events", "/tmp/j.jsonl", "-metrics", "localhost:0"},
		{"-coordinator", ":0", "-trials", "2", "-events", "/nonexistent/dir/j.jsonl"},
		{"-submit", "http://x", "-coordinator", ":0"},
		{"-submit", "http://x", "-trials", "2", "-priority", "0"},
		{"-submit", "http://x", "-trials", "2", "-max-inflight", "-1"},
		{"-submit", "http://x", "-trials", "2", "-minimize"},
		{"-submit", "http://x", "-trials", "2", "-metrics", "localhost:0"},
		{"-watch", "-trials", "2"},
		{"-worker", "http://x", "-priority", "2"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunGuidedMode(t *testing.T) {
	// Unguided-range guided fuzzing on the bench: response feedback steers
	// the corpus onto the command id, so the unlock lands well inside the
	// budget without -ids hints.
	dir := t.TempDir()
	corpusOut := dir + "/evolved.corpus"
	err := run([]string{"-target", "bench", "-mode", "guided", "-dur", "30m",
		"-seed", "3", "-corpus-out", corpusOut})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(corpusOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("evolved corpus file is empty")
	}
	// The evolved corpus must feed back in as a seed corpus.
	err = run([]string{"-target", "bench", "-mode", "guided", "-dur", "30m",
		"-seed", "8", "-corpus-in", corpusOut})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGuidedConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfgFile := dir + "/guided.json"
	doc := `{"seed": 3, "mode": "guided"}`
	if err := os.WriteFile(cfgFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-target", "bench", "-config", cfgFile, "-json", "-dur", "30m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuidedFleetMergedCorpus(t *testing.T) {
	dir := t.TempDir()
	merged := dir + "/merged.corpus"
	err := run([]string{"-target", "bench", "-mode", "guided", "-trials", "3",
		"-workers", "2", "-dur", "30m", "-seed", "11", "-corpus-out", merged})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("fleet merged corpus file is empty")
	}
}

func TestRunMinimizeEmitsReplayableLog(t *testing.T) {
	// The acceptance path: canfuzz -minimize writes a reproducer log that
	// cmd/canreplay can replay to the same finding. The replay itself is
	// exercised in internal/guided; here we check the emitted artifact.
	dir := t.TempDir()
	repro := dir + "/repro.log"
	err := run([]string{"-target", "bench", "-mode", "guided", "-dur", "30m",
		"-seed", "3", "-minimize-out", repro, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(repro)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines == 0 || lines > 8 {
		t.Fatalf("reproducer has %d frames, want 1..8", lines)
	}
	if !strings.Contains(string(data), "215#") {
		t.Fatalf("reproducer does not touch the command id:\n%s", data)
	}
}

func TestRunMinimizeNoFindingIsNotAnError(t *testing.T) {
	// A run that finds nothing has nothing to minimize; that is a clean
	// exit, not a failure.
	err := run([]string{"-target", "bench", "-mode", "random", "-dur", "2s",
		"-seed", "1", "-minimize"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedCampaign(t *testing.T) {
	// CLI-level smoke of the distributed path: a coordinator and one worker
	// in the same process complete a campaign, the journal holds every
	// trial's result, and a -resume restart of the finished campaign is a
	// clean no-op (all trials replayed from the journal, nothing re-run).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	journal := dir + "/journal.jsonl"
	coordDone := make(chan error, 1)
	coordArgs := []string{"-target", "bench", "-ids", "215", "-trials", "4",
		"-dur", "30m", "-seed", "9", "-coordinator", addr, "-events", journal,
		"-lease-ttl", "5s"}
	go func() { coordDone <- run(coordArgs) }()

	if err := run([]string{"-worker", "http://" + addr, "-worker-name", "w1"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	results := strings.Count(string(data), `"type":"trial_result"`)
	if results != 4 {
		t.Fatalf("journal has %d trial_result lines, want 4:\n%s", results, data)
	}

	// Resume the completed campaign: no worker needed, identical spec
	// required, journal must not grow.
	if err := run(append(append([]string(nil), coordArgs...), "-resume")); err != nil {
		t.Fatalf("resume: %v", err)
	}
	after, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(after), string(data)) || len(after) != len(data) {
		t.Fatalf("resume of a finished campaign changed the journal (%d -> %d bytes)", len(data), len(after))
	}

	// A resume with a different spec must be refused.
	if err := run([]string{"-target", "bench", "-ids", "215", "-trials", "5",
		"-dur", "30m", "-seed", "9", "-coordinator", addr, "-events", journal,
		"-resume"}); err == nil {
		t.Fatal("resume with a different trial count accepted")
	}
}

func TestRunFleetEventsLog(t *testing.T) {
	// The acceptance run: a fleet with -events streams schema-valid JSONL
	// whose *sorted* content is byte-identical across worker counts.
	dir := t.TempDir()
	runWith := func(workers int, file string) []string {
		t.Helper()
		path := dir + "/" + file
		err := run([]string{"-target", "bench", "-ids", "215", "-trials", "8",
			"-workers", strconv.Itoa(workers), "-dur", "30m", "-seed", "9",
			"-events", path, "-metrics", "localhost:0"})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	seq := runWith(1, "seq.jsonl")
	par := runWith(runtime.NumCPU(), "par.jsonl")
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sorted event logs differ at line %d:\nseq: %s\npar: %s", i, seq[i], par[i])
		}
	}
	starts := 0
	for _, line := range seq {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if ev["type"] == "trial_start" {
			starts++
		}
	}
	if starts != 8 {
		t.Fatalf("got %d trial_start events, want 8", starts)
	}
}
