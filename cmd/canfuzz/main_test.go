package main

import (
	"os"
	"testing"
)

func TestRunBenchTargeted(t *testing.T) {
	// Targeted at the command id, a hit lands within a few virtual minutes.
	err := run([]string{"-target", "bench", "-ids", "215", "-dur", "30m", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterTarget(t *testing.T) {
	if err := run([]string{"-target", "cluster", "-dur", "2m", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVehicleTarget(t *testing.T) {
	if err := run([]string{"-target", "vehicle", "-dur", "5s", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-target", "nope"},
		{"-target", "bench", "-bcm-check", "nope"},
		{"-target", "bench", "-ids", "ZZZ"},
		{"-target", "bench", "-ids", "FFFF"},
		{"-target", "bench", "-len-min", "9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunBitsMode(t *testing.T) {
	if err := run([]string{"-mode", "bits", "-dur", "2s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMode(t *testing.T) {
	if err := run([]string{"-target", "bench", "-mode", "sweep", "-sweep-len", "0", "-dur", "3s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMutateModeWithCorpus(t *testing.T) {
	// The paper's recommended workflow: capture traffic, then mutate
	// "around known message ids". Build a corpus file containing the
	// unlock command and let single-bit mutation rediscover unlocking.
	dir := t.TempDir()
	corpus := dir + "/corpus.log"
	log := "(0.001000) body0 215#105F010000012000\n" // the LOCK command (byte0 0x10)
	if err := os.WriteFile(corpus, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	// Lock (0x10) and unlock (0x20) differ in two bits of byte 0, so
	// two-bit mutation can cross between them.
	err := run([]string{"-target", "bench", "-mode", "mutate", "-corpus", corpus,
		"-mutate-bits", "2", "-dur", "30m", "-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunModeErrors(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-mode", "mutate"}); err == nil {
		t.Fatal("mutate without corpus accepted")
	}
	if err := run([]string{"-mode", "mutate", "-corpus", "/nonexistent"}); err == nil {
		t.Fatal("missing corpus file accepted")
	}
	dir := t.TempDir()
	empty := dir + "/empty.log"
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if err := run([]string{"-mode", "mutate", "-corpus", empty}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	bad := dir + "/bad.log"
	os.WriteFile(bad, []byte("garbage\n"), 0o644)
	if err := run([]string{"-mode", "mutate", "-corpus", bad}); err == nil {
		t.Fatal("unparseable corpus accepted")
	}
}

func TestRunWithConfigFileAndJSONReport(t *testing.T) {
	dir := t.TempDir()
	cfgFile := dir + "/campaign.json"
	doc := `{"seed": 2, "targetIds": [533], "lenMin": 1, "lenMax": 7}`
	if err := os.WriteFile(cfgFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-target", "bench", "-config", cfgFile, "-json", "-dur", "30m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConfigFileErrors(t *testing.T) {
	if err := run([]string{"-config", "/nonexistent.json"}); err == nil {
		t.Fatal("missing config accepted")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	os.WriteFile(bad, []byte(`{"mode":"explode"}`), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunFleetMode(t *testing.T) {
	// Targeted fleet: every trial unlocks within virtual seconds.
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "6",
		"-workers", "3", "-dur", "30m", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetModeJSON(t *testing.T) {
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "3",
		"-workers", "2", "-dur", "30m", "-seed", "5", "-json"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetFailFast(t *testing.T) {
	err := run([]string{"-target", "bench", "-ids", "215", "-trials", "16",
		"-workers", "2", "-dur", "30m", "-seed", "5", "-fail-fast"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-trials", "0"},
		{"-trials", "-3"},
		{"-workers", "0"},
		{"-workers", "-1"},
		{"-interval", "100us"},
		{"-trials", "2", "-chaos", "seed=1;jam(at=1s)"},
		{"-trials", "2", "-metrics", "localhost:0"},
		{"-trials", "2", "-trace", "/tmp/t.json"},
		{"-trials", "2", "-mode", "bits"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
