// Command canfuzz is the reproduction of the paper's PC-based fuzzer (§V,
// Figs 2-3): a configurable CAN fuzzer runnable against the built-in
// targets — the bench-top unlock testbed, the instrument cluster on a
// bench, or the full simulated vehicle.
//
// Usage examples:
//
//	canfuzz -target bench -dur 30m              # hunt the unlock (Table V)
//	canfuzz -target cluster -dur 5m             # brick the cluster (Fig 9)
//	canfuzz -target vehicle -bus body -dur 10s  # disturb the car (Figs 7-8)
//	canfuzz -target bench -ids 215 -len-min 7 -len-max 7   # targeted
//	canfuzz -target bench -trials 1000 -workers 8 -json    # fleet (Table V distribution)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaignd"
	"repro/internal/can"
	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ecu"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/observatory"
	"repro/internal/telemetry"

	targetPkg "repro/internal/target"

	busPkg "repro/internal/bus"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "canfuzz", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:]); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("canfuzz", flag.ContinueOnError)
	target := fs.String("target", "bench", "target system: bench, cluster or vehicle")
	busName := fs.String("bus", "body", "vehicle bus: body or powertrain")
	seed := fs.Int64("seed", 1, "campaign seed")
	dur := fs.Duration("dur", 10*time.Minute, "maximum virtual fuzzing time")
	interval := fs.Duration("interval", time.Millisecond, "transmission interval (>= 1ms)")
	idMin := fs.Uint("id-min", 0, "lowest fuzzed identifier")
	idMax := fs.Uint("id-max", can.MaxID, "highest fuzzed identifier")
	ids := fs.String("ids", "", "comma-separated hex identifiers for targeted fuzzing")
	lenMin := fs.Int("len-min", 0, "minimum payload length")
	lenMax := fs.Int("len-max", can.MaxDataLen, "maximum payload length")
	stop := fs.Bool("stop-on-finding", true, "halt at first finding")
	check := fs.String("bcm-check", "byte", "bench BCM parser: byte, length or twobytes")
	mode := fs.String("mode", "random", "generation mode: random, mutate, sweep or bits")
	configFile := fs.String("config", "", "JSON campaign configuration (overrides the range flags)")
	jsonOut := fs.Bool("json", false, "print a machine-readable campaign report")
	corpusFile := fs.String("corpus", "", "capture log seeding mutate/bits modes (candump format)")
	mutateBits := fs.Int("mutate-bits", 1, "bits flipped per frame in mutate/bits modes")
	sweepLen := fs.Int("sweep-len", 1, "fixed payload length for sweep mode")
	chaosSpec := fs.String("chaos", "", `fault-injection plan, e.g. "seed=1;corrupt(p=1,at=2s,for=50ms);jam(at=5s,for=10ms)"`)
	recovery := fs.Bool("recover", false, "ISO 11898-1 bus-off auto-recovery plus the campaign resilience policy")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /healthz and /trace.json on this address (e.g. localhost:9900)")
	traceFile := fs.String("trace", "", "write the campaign as Chrome trace_event JSON to this file (open in Perfetto)")
	metricsHold := fs.Duration("metrics-hold", 0, "keep the metrics endpoint up this long (wall time) after the campaign ends")
	trials := fs.Int("trials", 1, "number of independent fleet trials (>= 1; > 1 enables fleet mode)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "fleet worker-pool size (>= 1)")
	failFast := fs.Bool("fail-fast", false, "fleet mode: stop dispatching trials after the first confirmed finding")
	corpusIn := fs.String("corpus-in", "", "guided mode: seed corpus file, one ID#HEXDATA frame per line")
	corpusOut := fs.String("corpus-out", "", "guided mode: write the evolved corpus here (fleet: the merged corpus)")
	minimize := fs.Bool("minimize", false, "minimize the first finding's trigger window to a minimal reproducer after the run")
	minimizeOut := fs.String("minimize-out", "", "write the minimized reproducer as a canreplay-compatible capture log (implies -minimize)")
	findingsDB := fs.String("findings-db", "", "merge this run's findings into the deduplicated findings database at this directory (see cmd/canregress)")
	eventsFile := fs.String("events", "", "fleet mode: stream the campaign event log (JSONL) to this file")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof on the -metrics endpoint")
	trialTimeout := fs.Duration("trial-timeout", 0, "fleet mode: wall-clock budget per trial (0 = none); a hung trial is cancelled and counted stalled")
	coordAddr := fs.String("coordinator", "", "serve a distributed campaign coordinator on this address (requires -events and -trials > 1)")
	resume := fs.Bool("resume", false, "coordinator mode: resume a crashed campaign from the -events journal")
	leaseTTL := fs.Duration("lease-ttl", campaignd.DefaultLeaseTTL, "coordinator mode: worker lease deadline before a trial is re-dispatched")
	workerURL := fs.String("worker", "", "run as a campaign worker for the coordinator at this URL (e.g. http://host:9990)")
	workerName := fs.String("worker-name", "", "worker mode: name reported to the coordinator (default hostname-pid)")
	submitURL := fs.String("submit", "", "submit this invocation's campaign to the canfuzzd service at this URL and print the campaign ID")
	watch := fs.Bool("watch", false, "submit mode: poll the service until the campaign completes, then print its final report")
	priority := fs.Int("priority", 1, "submit mode: fair-share scheduling weight (>= 1; higher gets proportionally more of the fleet)")
	maxInflight := fs.Int("max-inflight", 0, "submit mode: cap on this campaign's concurrently leased trials (0 = unlimited)")
	statusURL := fs.String("status", "", "print a one-line-per-campaign table from the canfuzzd service at this URL and exit")
	token := fs.String("token", "", "bearer token for the canfuzzd campaign API (worker/submit/status modes)")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "canfuzz")
	if err != nil {
		return err
	}
	logger = l
	if *minimizeOut != "" {
		*minimize = true
	}

	// Status mode is a pure read: one /fleet.json fetch, one table, exit.
	if *statusURL != "" {
		return runStatus(*statusURL, *token)
	}

	// Worker mode is a different program: the campaign definition comes
	// from the coordinator, so any local campaign flag is rejected.
	if *workerURL != "" {
		if *coordAddr != "" {
			return fmt.Errorf("-worker and -coordinator are mutually exclusive")
		}
		if err := rejectWorkerFlags(fs); err != nil {
			return err
		}
		return runWorker(*workerURL, *workerName, *token)
	}
	if *priority < 1 {
		return fmt.Errorf("-priority must be >= 1, got %d", *priority)
	}
	if *maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0, got %d", *maxInflight)
	}
	if *submitURL == "" {
		switch {
		case *watch:
			return fmt.Errorf("-watch requires -submit")
		}
	}

	// Flag validation: loud errors instead of silent misbehaviour.
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1, got %d", *trials)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if *interval < core.MinInterval {
		return fmt.Errorf("-interval must be >= 1ms (the fuzzer's maximum rate, §VI), got %v", *interval)
	}
	if *trials > 1 {
		switch {
		case *chaosSpec != "":
			return fmt.Errorf("-chaos is not supported in fleet mode (-trials > 1): fault plans attach to one world")
		case *traceFile != "":
			return fmt.Errorf("-trace is not supported in fleet mode (-trials > 1): a Chrome trace captures one world's event stream")
		case *mode == "bits":
			return fmt.Errorf("-mode bits is not supported in fleet mode (-trials > 1)")
		case *minimize:
			return fmt.Errorf("-minimize is not supported in fleet mode (-trials > 1): minimize the single-run reproduction of one trial instead")
		}
	}
	if *eventsFile != "" && *trials <= 1 {
		return fmt.Errorf("-events requires fleet mode (-trials > 1): the event log streams per-trial records")
	}
	if *trialTimeout < 0 {
		return fmt.Errorf("-trial-timeout must be >= 0, got %v", *trialTimeout)
	}
	if *resume && *coordAddr == "" {
		return fmt.Errorf("-resume requires -coordinator: it reloads the coordinator's -events journal")
	}
	if *submitURL != "" {
		switch {
		case *coordAddr != "":
			return fmt.Errorf("-submit and -coordinator are mutually exclusive")
		case *chaosSpec != "" || *traceFile != "" || *minimize:
			return fmt.Errorf("-chaos/-trace/-minimize are not supported with -submit: the campaign runs on the service's worker fleet")
		case *metricsAddr != "" || *eventsFile != "":
			return fmt.Errorf("-metrics/-events are not supported with -submit: the canfuzzd service owns the observatory and the journal")
		}
	}
	if *findingsDB != "" && (*submitURL != "" || *coordAddr != "") {
		return fmt.Errorf("-findings-db is not supported with -submit/-coordinator: run canfuzzd -findings-db (service) or canregress add (journals) instead")
	}
	if *coordAddr != "" {
		switch {
		case *trials <= 1:
			return fmt.Errorf("-coordinator requires fleet mode (-trials > 1)")
		case *eventsFile == "":
			return fmt.Errorf("-coordinator requires -events: the event log is the campaign's durable journal")
		case *failFast:
			return fmt.Errorf("-fail-fast is not supported with -coordinator: early stop would make the report depend on worker timing")
		case *metricsAddr != "":
			return fmt.Errorf("-metrics is redundant with -coordinator: the coordinator address serves the observatory routes too")
		}
	}
	if *pprofFlag && *metricsAddr == "" && *coordAddr == "" {
		return fmt.Errorf("-pprof requires -metrics: profiles are served on the metrics endpoint")
	}
	if *minimize && *chaosSpec != "" {
		return fmt.Errorf("-minimize is not supported with -chaos: replay worlds are rebuilt without the fault plan")
	}

	cfg := core.Config{
		Seed:       *seed,
		IDMin:      can.ID(*idMin),
		IDMax:      can.ID(*idMax),
		LenMin:     *lenMin,
		LenMax:     *lenMax,
		Interval:   *interval,
		MutateBits: *mutateBits,
		SweepLen:   *sweepLen,
	}
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			return err
		}
		cfg, err = core.ParseConfigJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("config %s: %w", *configFile, err)
		}
		switch cfg.Mode {
		case core.ModeMutate:
			*mode = "mutate"
		case core.ModeSweep:
			*mode = "sweep"
		case core.ModeGuided:
			*mode = "guided"
		default:
			*mode = "random"
		}
	}
	if *ids != "" {
		for _, tok := range strings.Split(*ids, ",") {
			id64, err := strconv.ParseUint(strings.TrimSpace(tok), 16, 16)
			if err != nil || id64 > can.MaxID {
				return fmt.Errorf("bad target id %q", tok)
			}
			cfg.TargetIDs = append(cfg.TargetIDs, can.ID(id64))
		}
	}

	var corpus []can.Frame
	if *corpusFile != "" {
		f, err := os.Open(*corpusFile)
		if err != nil {
			return err
		}
		trace, err := capture.ParseLog(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, r := range trace.Records() {
			corpus = append(corpus, r.Frame)
		}
		if len(corpus) == 0 {
			return fmt.Errorf("corpus %q holds no frames", *corpusFile)
		}
	}

	// The telemetry plane is created only when observability is requested;
	// otherwise every hook stays nil and the hot path is unchanged. In
	// fleet mode it is the campaign-level plane behind the observatory
	// handler, not a per-world instrument.
	var tel *telemetry.Telemetry
	if *metricsAddr != "" || *traceFile != "" {
		tel = telemetry.New(0)
	}

	// SIGINT cancels holds and drains the HTTP endpoint instead of killing
	// the process mid-write.
	ctx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSig()

	if *mode != "guided" && (*corpusIn != "" || *corpusOut != "") {
		return fmt.Errorf("-corpus-in/-corpus-out require -mode guided")
	}

	switch *mode {
	case "random":
	case "mutate":
		cfg.Mode = core.ModeMutate
		if len(corpus) > 0 {
			cfg.Corpus = corpus
			cfg.MutateID = true
		}
	case "sweep":
		cfg.Mode = core.ModeSweep
	case "guided":
		cfg.Mode = core.ModeGuided
	case "bits":
		if *chaosSpec != "" || *recovery {
			return fmt.Errorf("-chaos/-recover are not supported in bits mode")
		}
		if *minimize {
			return fmt.Errorf("-minimize is not supported in bits mode")
		}
		return runBitsMode(ctx, *seed, *dur, *interval, *mutateBits, corpus,
			tel, *metricsAddr, *traceFile, *metricsHold)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	// Guided seed corpora use the one-frame-per-line ID#HEXDATA format so
	// fleet-merged corpora feed straight back in.
	var guidedSeed []can.Frame
	if *corpusIn != "" {
		f, err := os.Open(*corpusIn)
		if err != nil {
			return err
		}
		guidedSeed, err = guided.ReadCorpus(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("corpus-in %s: %w", *corpusIn, err)
		}
	}

	checkMode, err := targetPkg.ParseCheckMode(*check)
	if err != nil {
		return err
	}
	spec := targetPkg.Spec{
		Target:     *target,
		Bus:        *busName,
		Check:      checkMode,
		Stop:       *stop,
		Recovery:   *recovery,
		GuidedSeed: guidedSeed,
	}

	// The chaos plan is parsed up front; the injector itself is built per
	// world so it shares the world's scheduler.
	var plan *faults.Plan
	if *chaosSpec != "" {
		p, perr := faults.ParsePlan(*chaosSpec)
		if perr != nil {
			return perr
		}
		plan = &p
	}

	if *coordAddr != "" || *submitURL != "" {
		// The wire spec is the complete campaign definition: workers rebuild
		// identical worlds from it, and the journal embeds it so -resume can
		// prove it is continuing the same campaign.
		wireSpec := campaignd.CampaignSpec{
			Target:            spec.Target,
			Bus:               spec.Bus,
			BCMCheck:          *check,
			StopOnFinding:     spec.Stop,
			Recovery:          spec.Recovery,
			Trials:            *trials,
			BaseSeed:          cfg.Seed,
			MaxPerTrialNanos:  int64(*dur),
			TrialTimeoutNanos: int64(*trialTimeout),
			Config:            cfg.ToJSON(),
		}
		for _, f := range spec.GuidedSeed {
			wireSpec.GuidedSeed = append(wireSpec.GuidedSeed, core.FormatCorpusFrame(f))
		}
		if *submitURL != "" {
			return runSubmit(ctx, *submitURL, *token, wireSpec, submitOpts{
				priority:    *priority,
				maxInflight: *maxInflight,
				watch:       *watch,
				jsonOut:     *jsonOut,
			})
		}
		return runCoordinator(ctx, wireSpec, coordinatorOpts{
			addr:       *coordAddr,
			leaseTTL:   *leaseTTL,
			resume:     *resume,
			eventsFile: *eventsFile,
			corpusOut:  *corpusOut,
			jsonOut:    *jsonOut,
			pprof:      *pprofFlag,
		})
	}

	if *trials > 1 {
		return runFleet(ctx, spec, cfg, fleetRunOpts{
			trials:       *trials,
			workers:      *workers,
			maxPerTrial:  *dur,
			trialTimeout: *trialTimeout,
			failFast:     *failFast,
			jsonOut:      *jsonOut,
			corpusOut:    *corpusOut,
			eventsFile:   *eventsFile,
			metricsAddr:  *metricsAddr,
			metricsHold:  *metricsHold,
			pprof:        *pprofFlag,
			tel:          tel,
			findingsDB:   *findingsDB,
		})
	}

	// A single run is a one-trial campaign: the same observatory handler
	// serves it, with fuzzer introspection wired when the engine is guided.
	var intr *guided.Introspection
	if *metricsAddr != "" && cfg.Mode == core.ModeGuided {
		intr = guided.NewIntrospection()
	}

	buildStart := time.Now()
	world, inj, err := newWorld(spec, cfg, tel, plan, intr)
	if err != nil {
		return err
	}
	buildWall := time.Since(buildStart)
	sched, campaign := world.Sched, world.Campaign

	logger.Info("fuzzing", "target", *target, "space", cfg.SpaceSize(),
		"interval", campaign.Generator().Config().Interval, "seed", *seed)

	var handler *observatory.Observatory
	if *metricsAddr != "" {
		handler = observatory.New(observatory.Config{Fuzz: intr, Telemetry: tel})
	}
	stopServing, err := serveObservatory(handler, *metricsAddr, *pprofFlag)
	if err != nil {
		return err
	}
	defer stopServing()

	if inj != nil {
		if err := inj.Start(); err != nil {
			return err
		}
		logger.Info("chaos armed", "kinds", strings.Join(inj.Plan().Kinds(), ","),
			"recover", *recovery)
	}

	runStart := time.Now()
	campaign.Start()
	sched.RunUntil(sched.Now() + *dur)
	campaign.Stop()
	runWall := time.Since(runStart)
	if inj != nil {
		inj.Stop()
	}

	if err := finishTelemetry(ctx, tel, *traceFile, *metricsHold); err != nil {
		return err
	}

	if *corpusOut != "" && world.Corpus != nil {
		if err := writeCorpusFile(*corpusOut, world.Corpus()); err != nil {
			return err
		}
	}

	var minimized *core.MinimizedTrigger
	var minimizeWall time.Duration
	if *minimize {
		var err error
		minimizeStart := time.Now()
		if minimized, err = runMinimize(spec, cfg, campaign, *minimizeOut); err != nil {
			return err
		}
		minimizeWall = time.Since(minimizeStart)
	}
	logger.Info("phase wall time",
		"build", buildWall.Round(time.Microsecond),
		"run", runWall.Round(time.Microsecond),
		"minimize", minimizeWall.Round(time.Microsecond))

	rep := campaign.BuildReport()
	rep.Minimized = minimized
	if *findingsDB != "" {
		n, err := mergeRunFindings(*findingsDB, spec, cfg, *chaosSpec, campaign, minimized, *minimizeOut)
		if err != nil {
			return err
		}
		logger.Info("findings db updated", "dir", *findingsDB, "new_records", n)
	}
	if *jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	fmt.Printf("sent %d frames (%d rejected) in %v virtual time\n",
		campaign.FramesSent(), campaign.SendErrors(), sched.Now())
	fmt.Printf("identifier coverage: %d distinct ids fuzzed\n",
		campaign.Monitor().DistinctIDsSent())
	if inj != nil {
		fmt.Printf("faults injected by kind: %v\n", inj.Counts())
	}
	if rep.CorpusSize > 0 || rep.NoveltyHits > 0 {
		fmt.Printf("guided: corpus %d frames, %d novel features\n",
			rep.CorpusSize, rep.NoveltyHits)
	}
	if rep.Resilience != nil {
		fmt.Printf("resilience: %d retries (%d exhausted), %d watchdog fires, %d bus-offs, %d recoveries\n",
			rep.Resilience.Retries, rep.Resilience.RetriesExhausted,
			rep.Resilience.WatchdogFires, rep.Resilience.PortBusOffs, rep.Resilience.PortRecoveries)
	}
	findings := campaign.Findings()
	if len(findings) == 0 {
		fmt.Println("no findings (remember: not triggering anything does not mean no flaws exist)")
		return nil
	}
	for i, f := range findings {
		fmt.Printf("finding %d: [%s] %s after %v (%d frames)\n",
			i+1, f.Verdict.Oracle, f.Verdict.Detail, f.Elapsed, f.FramesSent)
		fmt.Println("  recent frames (oldest first):")
		for _, fr := range f.Recent {
			fmt.Printf("    %s\n", fr)
		}
	}
	if rep.Minimized != nil {
		fmt.Printf("minimized reproducer for [%s]: %d frames (from %d, %d executions)\n",
			rep.Minimized.Oracle, len(rep.Minimized.Frames),
			rep.Minimized.OriginalFrames, rep.Minimized.Executions)
		for _, l := range rep.Minimized.Frames {
			fmt.Printf("    %s\n", l)
		}
	}
	return nil
}

// runMinimize shrinks the first finding's trigger window by re-executing
// candidate subsequences in fresh replay worlds. It returns nil without
// error when the campaign produced no findings.
func runMinimize(spec targetPkg.Spec, cfg core.Config, campaign *core.Campaign, outFile string) (*core.MinimizedTrigger, error) {
	findings := campaign.Findings()
	if len(findings) == 0 {
		logger.Info("minimize: no findings to minimize")
		return nil, nil
	}
	f := findings[0]
	interval := campaign.Generator().Config().Interval
	m := &guided.Minimizer{
		Factory: func(fleet.TrialSpec) (*fleet.World, error) {
			w, _, err := newWorld(spec, cfg, nil, nil, nil)
			return w, err
		},
		Seed:     cfg.Seed,
		Oracle:   f.Verdict.Oracle,
		Interval: interval,
	}
	res, err := m.Minimize(f.Recent)
	if err != nil {
		return nil, fmt.Errorf("minimize: %w", err)
	}
	logger.Info("minimized", "oracle", res.Oracle, "frames", len(res.Frames),
		"from", res.OriginalFrames, "executions", res.Executions)
	if outFile != "" {
		out, err := os.Create(outFile)
		if err != nil {
			return nil, err
		}
		werr := res.WriteReplayLog(out, "can0", interval)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, werr
		}
		logger.Info("reproducer written", "file", outFile, "frames", len(res.Frames))
	}
	return res.Trigger(), nil
}

// writeCorpusFile serializes an evolved corpus in the shareable
// one-frame-per-line format.
func writeCorpusFile(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := guided.WriteCorpus(f, lines)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	logger.Info("corpus written", "file", path, "frames", len(lines))
	return nil
}

// newWorld constructs one fully isolated target world through the shared
// internal/target builder. The single-campaign path calls it once with the
// telemetry plane and chaos plan; the fleet calls it once per trial with
// both nil, which is what keeps trials independent and the hot path
// uninstrumented. A non-nil intr registers the world's guided engine (if
// any) with the fuzzer-introspection plane behind /fuzz.json.
func newWorld(spec targetPkg.Spec, cfg core.Config, tel *telemetry.Telemetry, plan *faults.Plan, intr *guided.Introspection) (*fleet.World, *faults.Injector, error) {
	b, err := targetPkg.Build(spec, cfg, targetPkg.Options{
		Telemetry:     tel,
		Plan:          plan,
		Introspection: intr,
	})
	if err != nil {
		return nil, nil, err
	}
	return b.World, b.Injector, nil
}

// fleetRunOpts carries the fleet flags, including the observability
// surface (-events, -metrics, -metrics-hold, -pprof).
type fleetRunOpts struct {
	trials, workers int
	maxPerTrial     time.Duration
	trialTimeout    time.Duration
	failFast        bool
	jsonOut         bool
	corpusOut       string
	eventsFile      string
	metricsAddr     string
	metricsHold     time.Duration
	pprof           bool
	tel             *telemetry.Telemetry
	findingsDB      string
}

// runFleet executes -trials independent campaigns on the worker pool and
// prints the deterministic fleet report (JSON with -json, a summary
// otherwise). With -events or -metrics the campaign observatory rides
// along: a streaming JSONL event log and/or the live HTTP campaign API.
func runFleet(ctx context.Context, spec targetPkg.Spec, cfg core.Config, o fleetRunOpts) error {
	logEvery := o.trials / 10
	if logEvery < 1 {
		logEvery = 1
	}

	// Event sink: file-backed with -events, ring-only (for /events tailing)
	// when just the HTTP API is up.
	var sink *observatory.Sink
	var eventsOut *os.File
	if o.eventsFile != "" {
		f, err := os.Create(o.eventsFile)
		if err != nil {
			return err
		}
		eventsOut = f
		defer func() {
			// The success path closes (and nils) eventsOut explicitly so a
			// write error surfaces as a non-zero exit; this only covers the
			// early-error returns above it.
			if eventsOut != nil {
				eventsOut.Close()
			}
		}()
		sink = observatory.NewSink(f)
	} else if o.metricsAddr != "" {
		sink = observatory.NewSink(nil)
	}
	var intr *guided.Introspection
	if o.metricsAddr != "" && cfg.Mode == core.ModeGuided {
		intr = guided.NewIntrospection()
	}
	obs := observatory.New(observatory.Config{Sink: sink, Fuzz: intr, Telemetry: o.tel})

	stopServing, err := serveObservatory(obs, o.metricsAddr, o.pprof)
	if err != nil {
		return err
	}
	defer stopServing()

	logger.Info("fleet fuzzing", "target", spec.Target, "trials", o.trials,
		"workers", o.workers, "base_seed", cfg.Seed, "max_per_trial", o.maxPerTrial)
	rep, err := fleet.Run(fleet.Config{
		Trials:       o.trials,
		Workers:      o.workers,
		BaseSeed:     cfg.Seed,
		MaxPerTrial:  o.maxPerTrial,
		TrialTimeout: o.trialTimeout,
		FailFast:     o.failFast,
		Logger:       logger,
		LogEvery:     logEvery,
		Observer:     obs,
	}, func(ts fleet.TrialSpec) (*fleet.World, error) {
		tcfg := cfg
		tcfg.Seed = ts.Seed
		w, _, err := newWorld(spec, tcfg, nil, nil, intr)
		return w, err
	})
	if err != nil {
		return err
	}
	// An event log that silently lost writes is worse than no log: surface
	// any sink error, sync-to-disk error or close error as a failed run.
	if serr := sink.Err(); serr != nil {
		return fmt.Errorf("event log %s: %w", o.eventsFile, serr)
	}
	if eventsOut != nil {
		if err := eventsOut.Sync(); err != nil {
			return fmt.Errorf("event log %s: %w", o.eventsFile, err)
		}
		f := eventsOut
		eventsOut = nil // the deferred close must not double-close
		if err := f.Close(); err != nil {
			return fmt.Errorf("event log %s: close: %w", o.eventsFile, err)
		}
		logger.Info("event log written", "file", o.eventsFile, "events", sink.Count())
	}
	if o.corpusOut != "" {
		if err := writeCorpusFile(o.corpusOut, rep.MergedCorpus); err != nil {
			return err
		}
	}
	if o.findingsDB != "" {
		n, err := mergeFleetFindings(o.findingsDB, spec, cfg, rep)
		if err != nil {
			return err
		}
		logger.Info("findings db updated", "dir", o.findingsDB, "new_records", n)
	}
	if o.metricsHold > 0 {
		logger.Info("holding metrics endpoint", "for", o.metricsHold)
		telemetry.Hold(ctx, o.metricsHold)
	}
	logger.Info("phase wall time",
		"build", rep.BuildWall.Round(time.Microsecond),
		"run", rep.RunWall.Round(time.Microsecond))
	if o.jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	fmt.Printf("phase wall time: build %v, run %v\n",
		rep.BuildWall.Round(time.Millisecond), rep.RunWall.Round(time.Millisecond))
	printFleetReport(rep)
	return nil
}

// printFleetReport prints the human-readable campaign summary shared by the
// in-process fleet and the distributed coordinator. It sticks to the
// deterministic report fields, so both paths describe the same campaign the
// same way.
func printFleetReport(rep *fleet.Report) {
	fmt.Printf("fleet: %d trials (%d findings, %d timeouts, %d stalled, %d panics, %d skipped) over %v total virtual time\n",
		rep.Trials, rep.FoundFindings, rep.TimedOut, rep.Stalled, rep.Panics, rep.Skipped, rep.VirtualTimeTotal)
	fmt.Printf("sent %d frames (%d rejected) across the fleet\n", rep.FramesSent, rep.SendErrors)
	if ttf := rep.TimeToFinding; ttf != nil {
		fmt.Printf("time to finding: mean %v, median %v, p95 %v, min %v, max %v (%d samples)\n",
			ttf.Mean, ttf.Median, ttf.P95, ttf.Min, ttf.Max, ttf.Samples)
	}
	if len(rep.MergedCorpus) > 0 {
		fmt.Printf("merged corpus: %d distinct frames across the fleet\n", len(rep.MergedCorpus))
	}
	for _, f := range rep.Findings {
		fmt.Printf("finding: [%s] %s (trigger id %s) in %d trials, fastest %v (first trial %d)\n",
			f.Oracle, f.Detail, f.TriggerID, f.Count, f.MinTimeToFinding, f.FirstTrial)
	}
	if rep.FoundFindings == 0 {
		fmt.Println("no findings (remember: not triggering anything does not mean no flaws exist)")
	}
}

// runBitsMode runs the data-link-layer fuzzer against a bench-mounted
// victim ECU and reports the protocol-level damage: error-frame counts and
// the victim's fault-confinement state.
func runBitsMode(ctx context.Context, seed int64, dur, interval time.Duration, flipBits int, corpus []can.Frame,
	tel *telemetry.Telemetry, metricsAddr, traceFile string, metricsHold time.Duration) error {
	sched := clock.New()
	b := busPkg.New(sched, busPkg.WithName("bench"))
	b.Instrument(tel)
	victimECU := ecu.New("victim", sched, b.Connect("victim"))
	victimECU.Instrument(tel)
	victimECU.HandleAll(func(busPkg.Message) {})

	port := b.Connect("bitfuzzer")
	bf := core.NewBitFuzzer(sched, port, core.BitFuzzConfig{
		Seed:     seed,
		Corpus:   corpus,
		FlipBits: flipBits,
		Interval: interval,
	})

	var obs *observatory.Observatory
	if tel != nil && metricsAddr != "" {
		obs = observatory.New(observatory.Config{Telemetry: tel})
	}
	stopServing, err := serveObservatory(obs, metricsAddr, false)
	if err != nil {
		return err
	}
	defer stopServing()

	bf.Start()
	// Malicious hardware that ignores fault confinement resets itself.
	sched.Every(25*time.Millisecond, port.ResetErrors)
	sched.RunUntil(sched.Now() + dur)
	bf.Stop()

	if err := finishTelemetry(ctx, tel, traceFile, metricsHold); err != nil {
		return err
	}

	st := bf.Stats()
	fmt.Printf("bit-level fuzzing for %v: %d injected, %d error frames, %d still-valid, %d rejected\n",
		sched.Now(), st.Injected, st.ErrorFrames, st.Delivered, st.Rejected)
	tec, rec := victimECU.Port().ErrorCounters()
	fmt.Printf("victim node: state %v (TEC %d, REC %d); bus corrupted-frame count %d\n",
		victimECU.Port().State(), tec, rec, b.Stats().FramesCorrupted)
	return nil
}

// serveObservatory starts the campaign HTTP endpoint when an address is
// given, mounting the observatory routes on top of the telemetry ones. The
// returned function drains the server gracefully; it is always safe to
// call.
func serveObservatory(obs *observatory.Observatory, addr string, pprofOn bool) (func(), error) {
	if obs == nil || addr == "" {
		return func() {}, nil
	}
	h := obs.Handler(observatory.HandlerConfig{Pprof: pprofOn})
	srv, bound, err := telemetry.ServeHandler(addr, h)
	if err != nil {
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	routes := "/campaign.json /events /fuzz.json /metrics /metrics.json /trace.json /healthz"
	if pprofOn {
		routes += " /debug/pprof/"
	}
	logger.Info("metrics endpoint up", "addr", bound, "routes", routes)
	return func() { telemetry.Shutdown(srv, time.Second) }, nil
}

// finishTelemetry writes the Chrome trace file if requested and holds the
// metrics endpoint open for scraping after the virtual run ends; SIGINT
// (via ctx) ends the hold early.
func finishTelemetry(ctx context.Context, tel *telemetry.Telemetry, traceFile string, hold time.Duration) error {
	if tel == nil {
		return nil
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := tel.Trc().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Info("trace written", "file", traceFile, "events", tel.Trc().Len())
	}
	if hold > 0 {
		logger.Info("holding metrics endpoint", "for", hold)
		telemetry.Hold(ctx, hold)
	}
	return nil
}
