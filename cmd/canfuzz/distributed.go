package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/campaignd"
	"repro/internal/fleet"
	"repro/internal/observatory"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// Distributed campaign mode: `canfuzz -coordinator :9990 -events j.jsonl
// -trials N ...` runs the lease-based coordinator, and any number of
// `canfuzz -worker http://host:9990` processes execute its trials. The
// coordinator's event log doubles as its crash journal: restarting it with
// -resume picks the campaign up where the log ends. DESIGN §12 has the
// full protocol.

// rejectWorkerFlags refuses flag combinations that contradict worker mode:
// the campaign definition comes from the coordinator, so every local
// campaign flag is a footgun that would silently be ignored.
func rejectWorkerFlags(fs *flag.FlagSet) error {
	allowed := map[string]bool{
		"worker": true, "worker-name": true, "token": true,
		"log-level": true, "log-format": true,
	}
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if !allowed[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("worker mode takes its campaign from the coordinator; drop %s",
			strings.Join(bad, ", "))
	}
	return nil
}

// buildRuntime maps a fetched campaign spec onto a worker runtime: a
// factory closing over the same internal/target builder the in-process
// fleet uses, so results are byte-identical to local execution. The Worker
// calls this lazily — once per campaign, the first time the scheduler hands
// it one of that campaign's trials — and caches the result across leases.
func buildRuntime(spec campaignd.CampaignSpec) (campaignd.Runtime, error) {
	ts, cfg, err := target.FromCampaignSpec(spec)
	if err != nil {
		return campaignd.Runtime{}, err
	}
	return campaignd.Runtime{
		Factory: func(tsp fleet.TrialSpec) (*fleet.World, error) {
			tcfg := cfg
			tcfg.Seed = tsp.Seed
			world, _, werr := newWorld(ts, tcfg, nil, nil, nil)
			return world, werr
		},
		FleetCfg: spec.FleetConfig(),
	}, nil
}

// runWorker is `canfuzz -worker URL`: lease, execute and submit trials
// until the server says no work is left. The server may be a
// single-campaign coordinator (`canfuzz -coordinator`) or the
// multi-campaign canfuzzd scheduler — the worker is campaign-agnostic
// either way, building and caching one runtime per campaign it is handed
// trials from.
func runWorker(coordURL, name, token string) error {
	ctx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSig()
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logger.Info("worker joined fleet", "name", name, "server", coordURL)
	w := &campaignd.Worker{
		Client: &campaignd.Client{Base: coordURL, Token: token},
		Name:   name,
		Build:  buildRuntime,
		Logger: logger,
	}
	return w.Run(ctx)
}

// coordinatorOpts carries the coordinator-mode flags.
type coordinatorOpts struct {
	addr       string
	leaseTTL   time.Duration
	resume     bool
	eventsFile string
	corpusOut  string
	jsonOut    bool
	pprof      bool
}

// runCoordinator is `canfuzz -coordinator ADDR`: serve the campaign API
// plus the full observatory on one address, journal every accepted result
// to the -events file, and print the final report — byte-identical to what
// `fleet.Run` would have produced in-process, at any worker topology.
func runCoordinator(ctx context.Context, wireSpec campaignd.CampaignSpec, o coordinatorOpts) error {
	var resumed map[int]fleet.TrialResult
	var journal *os.File
	if o.resume {
		data, err := os.ReadFile(o.eventsFile)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		j, err := campaignd.LoadJournal(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("resume %s: %w", o.eventsFile, err)
		}
		if err := j.Compatible(wireSpec); err != nil {
			return fmt.Errorf("resume %s: %w", o.eventsFile, err)
		}
		resumed = j.Results
		// Drop a torn tail line (a crash mid-append) before appending new
		// events after it.
		keep := 0
		if idx := bytes.LastIndexByte(data, '\n'); idx >= 0 {
			keep = idx + 1
		}
		journal, err = os.OpenFile(o.eventsFile, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if keep < len(data) {
			logger.Warn("journal has a torn tail line; truncating",
				"file", o.eventsFile, "dropped_bytes", len(data)-keep)
			if err := journal.Truncate(int64(keep)); err != nil {
				journal.Close()
				return fmt.Errorf("resume %s: truncate torn tail: %w", o.eventsFile, err)
			}
		}
		if _, err := journal.Seek(0, io.SeekEnd); err != nil {
			journal.Close()
			return err
		}
		logger.Info("resuming campaign from journal", "file", o.eventsFile,
			"completed", len(resumed), "remaining", wireSpec.Trials-len(resumed))
	} else {
		f, err := os.Create(o.eventsFile)
		if err != nil {
			return err
		}
		journal = f
	}

	sink := observatory.NewSink(journal)
	obs := observatory.New(observatory.Config{Sink: sink, Telemetry: telemetry.New(0)})
	coord, err := campaignd.New(campaignd.Config{
		Spec:     wireSpec,
		LeaseTTL: o.leaseTTL,
		Sink:     sink,
		Progress: obs.Progress(),
		Logger:   logger,
		Resumed:  resumed,
		Seed:     wireSpec.BaseSeed,
	})
	if err != nil {
		journal.Close()
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/campaignd/", coord.Handler())
	mux.Handle("/", obs.Handler(observatory.HandlerConfig{Pprof: o.pprof}))
	srv, bound, err := telemetry.ServeHandler(o.addr, mux, func() { _ = sink.Close() })
	if err != nil {
		journal.Close()
		return fmt.Errorf("coordinator endpoint: %w", err)
	}
	logger.Info("coordinator up", "addr", bound, "trials", wireSpec.Trials,
		"lease_ttl", o.leaseTTL, "journal", o.eventsFile,
		"routes", "/campaignd/{spec,lease,heartbeat,result,status} /campaign.json /events /metrics")

	rep, werr := coord.Wait(ctx)
	// Stay answerable until every polling worker has heard "done" (bounded
	// by the lease TTL — a crashed worker never comes back to ask).
	coord.Drain(ctx, o.leaseTTL)
	telemetry.Shutdown(srv, time.Second)
	if werr != nil {
		journal.Close()
		return fmt.Errorf("coordinator interrupted: %w", werr)
	}

	// Satellite of the journal design: a silently broken event log must
	// fail the run loudly — a journal that lost writes cannot be resumed
	// from, which the operator needs to know *now*, not at the next crash.
	if serr := sink.Err(); serr != nil {
		journal.Close()
		return fmt.Errorf("event log %s: %w", o.eventsFile, serr)
	}
	if err := journal.Sync(); err != nil {
		journal.Close()
		return fmt.Errorf("event log %s: %w", o.eventsFile, err)
	}
	if err := journal.Close(); err != nil {
		return fmt.Errorf("event log %s: close: %w", o.eventsFile, err)
	}
	st := coord.Snapshot()
	logger.Info("campaign complete", "trials", st.Trials, "resumed", st.Resumed,
		"lease_expiries", st.Expiries, "duplicate_results", st.Duplicates,
		"events", sink.Count())
	if o.corpusOut != "" && len(rep.MergedCorpus) > 0 {
		if err := writeCorpusFile(o.corpusOut, rep.MergedCorpus); err != nil {
			return err
		}
	}
	if o.jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	printFleetReport(rep)
	return nil
}
