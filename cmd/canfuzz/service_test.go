package main

import (
	"net/http/httptest"
	"testing"

	"repro/internal/campsrv"
)

func TestRunServiceClientModes(t *testing.T) {
	// CLI-level smoke of the campaign-service path: an in-process campsrv
	// server stands in for canfuzzd; `-worker` serves it, `-submit -watch`
	// rides one campaign to completion, `-status` renders the fleet table.
	s, err := campsrv.New(campsrv.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler(campsrv.HandlerConfig{AuthToken: "hunter2"}))
	defer hs.Close()

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- run([]string{"-worker", hs.URL, "-worker-name", "w1", "-token", "hunter2"})
	}()

	err = run([]string{"-target", "bench", "-ids", "215", "-trials", "3",
		"-dur", "30m", "-seed", "9", "-submit", hs.URL, "-watch", "-json",
		"-priority", "2", "-token", "hunter2"})
	if err != nil {
		t.Fatalf("submit -watch: %v", err)
	}

	if err := run([]string{"-status", hs.URL, "-token", "hunter2"}); err != nil {
		t.Fatalf("status: %v", err)
	}
	// Wrong token must be a hard client error, not a silent retry loop.
	if err := run([]string{"-status", hs.URL, "-token", "wrong"}); err == nil {
		t.Fatal("status with a bad token succeeded, want error")
	}

	s.BeginShutdown()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
}
