package main

import (
	"os"
	"strings"
	"testing"
)

func TestDemoReplayUnlocks(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "session 2: replayed capture; doors unlocked=true") {
		t.Fatalf("replay attack failed:\n%s", out)
	}
}

func TestReplayLogFileIntoBench(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/unlock.log"
	// The captured 0x215 unlock frame (Fig 13 bytes).
	content := "(0.100000) body0 215#205F010000012000\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-log", log, "-target", "bench"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "doors unlocked=true") {
		t.Fatalf("replayed unlock ignored:\n%s", sb.String())
	}
}

func TestReplayIntoVehicle(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/unlock.log"
	content := "(0.100000) body0 215#205F010000012000\n"
	os.WriteFile(log, []byte(content), 0o644)
	var sb strings.Builder
	if err := run([]string{"-log", log, "-target", "vehicle"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "doors unlocked=true") {
		t.Fatalf("vehicle replay failed:\n%s", sb.String())
	}
}

func TestReplayErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("no -log accepted")
	}
	if err := run([]string{"-log", "/nonexistent"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	empty := dir + "/empty.log"
	os.WriteFile(empty, []byte("# empty\n"), 0o644)
	if err := run([]string{"-log", empty}, &sb); err == nil {
		t.Fatal("empty log accepted")
	}
	full := dir + "/ok.log"
	os.WriteFile(full, []byte("(0.000001) c 001#AA\n"), 0o644)
	if err := run([]string{"-log", full, "-target", "nope"}, &sb); err == nil {
		t.Fatal("unknown target accepted")
	}
}
