package main

import (
	"os"
	"strings"
	"testing"
)

func TestDemoReplayUnlocks(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "session 2: replayed capture; doors unlocked=true") {
		t.Fatalf("replay attack failed:\n%s", out)
	}
}

func TestReplayLogFileIntoBench(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/unlock.log"
	// The captured 0x215 unlock frame (Fig 13 bytes).
	content := "(0.100000) body0 215#205F010000012000\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-log", log, "-target", "bench"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "doors unlocked=true") {
		t.Fatalf("replayed unlock ignored:\n%s", sb.String())
	}
}

func TestReplayIntoVehicle(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/unlock.log"
	content := "(0.100000) body0 215#205F010000012000\n"
	os.WriteFile(log, []byte(content), 0o644)
	var sb strings.Builder
	if err := run([]string{"-log", log, "-target", "vehicle"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "doors unlocked=true") {
		t.Fatalf("vehicle replay failed:\n%s", sb.String())
	}
}

func TestExpectOracleFires(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/unlock.log"
	content := "(0.100000) body0 215#205F010000012000\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-log", log, "-target", "bench", "-expect", "oracle=unlock-ack"}, &sb); err != nil {
		t.Fatalf("expected oracle fired but run failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), `expectation met: oracle "unlock-ack" fired`) {
		t.Fatalf("missing expectation report:\n%s", sb.String())
	}
}

func TestExpectOracleMissReturnsError(t *testing.T) {
	// The regression this pins: a log that replays cleanly but never
	// reproduces the defect used to exit 0. With -expect it must not.
	dir := t.TempDir()
	log := dir + "/noop.log"
	content := "(0.100000) body0 300#FF\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-log", log, "-target", "bench", "-expect", "oracle=unlock-ack"}, &sb)
	if err == nil {
		t.Fatalf("replay that never fired the oracle succeeded:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `expectation MISSED: oracle "unlock-ack" never fired`) {
		t.Fatalf("missing miss report:\n%s", sb.String())
	}
	// Without -expect the same replay still succeeds (observational mode).
	if err := run([]string{"-log", log, "-target", "bench"}, &sb); err != nil {
		t.Fatalf("observational replay failed: %v", err)
	}
}

func TestExpectParseErrors(t *testing.T) {
	dir := t.TempDir()
	log := dir + "/ok.log"
	os.WriteFile(log, []byte("(0.000001) c 001#AA\n"), 0o644)
	var sb strings.Builder
	if err := run([]string{"-log", log, "-expect", "unlocked=true"}, &sb); err == nil {
		t.Fatal("bad expect clause accepted")
	}
	if err := run([]string{"-demo", "-expect", "oracle=unlock-ack"}, &sb); err == nil {
		t.Fatal("-expect with -demo accepted")
	}
}

func TestReplayErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("no -log accepted")
	}
	if err := run([]string{"-log", "/nonexistent"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	empty := dir + "/empty.log"
	os.WriteFile(empty, []byte("# empty\n"), 0o644)
	if err := run([]string{"-log", empty}, &sb); err == nil {
		t.Fatal("empty log accepted")
	}
	full := dir + "/ok.log"
	os.WriteFile(full, []byte("(0.000001) c 001#AA\n"), 0o644)
	if err := run([]string{"-log", full, "-target", "nope"}, &sb); err == nil {
		t.Fatal("unknown target accepted")
	}
}
