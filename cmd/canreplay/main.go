// Command canreplay replays a captured CAN log into a simulated target
// with original timing — the classic sniff-and-replay attack of the
// paper's related work (Hoppe & Dittman's simulated electric-window
// attack, ref [10]): the BodyCommand carries no freshness, so a recorded
// unlock replays successfully.
//
// Usage:
//
//	canreplay -log capture.log [-target bench|vehicle]
//	canreplay -demo            # capture an app unlock, then replay it
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/testbench"
	"repro/internal/vehicle"

	busPkg "repro/internal/bus"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "canreplay", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canreplay", flag.ContinueOnError)
	logFile := fs.String("log", "", "candump-format log to replay")
	target := fs.String("target", "bench", "replay target: bench or vehicle")
	demo := fs.Bool("demo", false, "self-contained demo: record a legitimate unlock, replay it")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "canreplay")
	if err != nil {
		return err
	}
	logger = l

	if *demo {
		return runDemo(stdout)
	}
	if *logFile == "" {
		return fmt.Errorf("need -log or -demo (see -h)")
	}
	f, err := os.Open(*logFile)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := capture.ParseLog(f)
	if err != nil {
		return err
	}
	if trace.Len() == 0 {
		return fmt.Errorf("log %q holds no frames", *logFile)
	}

	sched := clock.New()
	var port *busPkg.Port
	var report func()
	switch *target {
	case "bench":
		bench := testbench.New(sched, testbench.Config{})
		port = bench.AttachFuzzer("replayer")
		report = func() {
			fmt.Fprintf(stdout, "bench after replay: doors unlocked=%v\n", bench.BCM.Unlocked())
		}
	case "vehicle":
		v := vehicle.New(sched, vehicle.Config{Seed: 1})
		port = v.AttachOBD(vehicle.OBDBody, "replayer")
		report = func() {
			fmt.Fprintf(stdout, "vehicle after replay: doors unlocked=%v, MILs=%v\n",
				v.BCM.Unlocked(), v.Cluster.ECU().MILs())
		}
	default:
		return fmt.Errorf("unknown target %q", *target)
	}

	dur := capture.Replay(sched, port, trace)
	sched.RunUntil(sched.Now() + dur + time.Second)
	fmt.Fprintf(stdout, "replayed %d frames over %v\n", trace.Len(), dur.Round(time.Millisecond))
	report()
	return nil
}

// runDemo records a legitimate app unlock on one bench, then replays the
// captured frames into a second, locked bench.
func runDemo(stdout io.Writer) error {
	// Session 1: record the legitimate unlock.
	sched1 := clock.New()
	bench1 := testbench.New(sched1, testbench.Config{AckUnlock: true})
	rec := capture.NewRecorder(bench1.Bus, 0)
	if err := bench1.HeadUnit.AppUnlock(testbench.AppToken); err != nil {
		return err
	}
	sched1.RunUntil(time.Second)
	fmt.Fprintf(stdout, "session 1: recorded %d frames; doors unlocked=%v\n",
		rec.Trace().Len(), bench1.BCM.Unlocked())

	// Session 2: a fresh, locked bench. The attacker replays the capture
	// without knowing what any frame means.
	sched2 := clock.New()
	bench2 := testbench.New(sched2, testbench.Config{})
	port := bench2.AttachFuzzer("replayer")
	dur := capture.Replay(sched2, port, rec.Trace())
	sched2.RunUntil(dur + time.Second)
	fmt.Fprintf(stdout, "session 2: replayed capture; doors unlocked=%v (no freshness in the command)\n",
		bench2.BCM.Unlocked())
	return nil
}
