// Command canreplay replays a captured CAN log into a simulated target
// with original timing — the classic sniff-and-replay attack of the
// paper's related work (Hoppe & Dittman's simulated electric-window
// attack, ref [10]): the BodyCommand carries no freshness, so a recorded
// unlock replays successfully.
//
// Usage:
//
//	canreplay -log capture.log [-target bench|vehicle]
//	canreplay -log repro.log -expect oracle=unlock-ack   # assert the outcome
//	canreplay -demo            # capture an app unlock, then replay it
//
// Without -expect the tool only reports what happened; with it the replay
// becomes a test: the named oracles are armed on the target and the exit
// status is non-zero unless every expected oracle fires. (Previously a
// replay whose defect never reproduced still exited 0 — useless in CI.)
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/telemetry"
	"repro/internal/testbench"
	"repro/internal/vehicle"

	busPkg "repro/internal/bus"
	sigPkg "repro/internal/signal"
)

// logger is the shared structured stderr logger of the tool; run replaces
// it once the -log-level/-log-format flags are parsed.
var logger = telemetry.NewCLILogger(os.Stderr, "canreplay", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canreplay", flag.ContinueOnError)
	logFile := fs.String("log", "", "candump-format log to replay")
	target := fs.String("target", "bench", "replay target: bench or vehicle")
	demo := fs.Bool("demo", false, "self-contained demo: record a legitimate unlock, replay it")
	expect := fs.String("expect", "", `expected outcome, e.g. "oracle=unlock-ack" (comma-separated; exit non-zero on miss)`)
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := logFlags.Logger(os.Stderr, "canreplay")
	if err != nil {
		return err
	}
	logger = l

	expected, err := parseExpect(*expect)
	if err != nil {
		return err
	}
	if *demo {
		if len(expected) > 0 {
			return fmt.Errorf("-expect requires -log")
		}
		return runDemo(stdout)
	}
	if *logFile == "" {
		return fmt.Errorf("need -log or -demo (see -h)")
	}
	f, err := os.Open(*logFile)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := capture.ParseLog(f)
	if err != nil {
		return err
	}
	if trace.Len() == 0 {
		return fmt.Errorf("log %q holds no frames", *logFile)
	}

	sched := clock.New()
	var port *busPkg.Port
	var tapBus *busPkg.Bus
	var oracles []oracle.Oracle
	var report func()
	switch *target {
	case "bench":
		// With expectations the bench acks unlocks, so the ack-based
		// "unlock-ack" oracle (the same one canfuzz arms) can fire.
		bench := testbench.New(sched, testbench.Config{AckUnlock: len(expected) > 0})
		port = bench.AttachFuzzer("replayer")
		tapBus = bench.Bus
		if len(expected) > 0 {
			oracles = append(oracles,
				bench.UnlockOracle(),
				bench.LEDOracle(10*time.Millisecond),
				oracle.Physical("bcm-unlock", 10*time.Millisecond, bench.BCM.Unlocked, false, "doors unlocked"))
		}
		report = func() {
			fmt.Fprintf(stdout, "bench after replay: doors unlocked=%v\n", bench.BCM.Unlocked())
		}
	case "vehicle":
		v := vehicle.New(sched, vehicle.Config{Seed: 1})
		port = v.AttachOBD(vehicle.OBDBody, "replayer")
		tapBus = v.Body
		if len(expected) > 0 {
			oracles = append(oracles,
				&oracle.SignalRange{DB: sigPkg.VehicleDB()},
				oracle.Physical("bcm-unlock", 10*time.Millisecond, v.BCM.Unlocked, false, "doors unlocked"))
		}
		report = func() {
			fmt.Fprintf(stdout, "vehicle after replay: doors unlocked=%v, MILs=%v\n",
				v.BCM.Unlocked(), v.Cluster.ECU().MILs())
		}
	default:
		return fmt.Errorf("unknown target %q", *target)
	}

	// Armed oracles watch the whole bus through a passive tap, exactly as a
	// campaign would watch its fuzz port.
	fired := map[string]bool{}
	if len(oracles) > 0 {
		reporter := func(v oracle.Verdict) {
			if !fired[v.Oracle] {
				logger.Info("oracle fired", "oracle", v.Oracle, "detail", v.Detail, "at", v.Time)
			}
			fired[v.Oracle] = true
		}
		for _, o := range oracles {
			o.Start(sched, reporter)
		}
		tapBus.Tap(func(m busPkg.Message) {
			for _, o := range oracles {
				o.Observe(m)
			}
		})
	}

	dur := capture.Replay(sched, port, trace)
	sched.RunUntil(sched.Now() + dur + time.Second)
	for _, o := range oracles {
		o.Stop()
	}
	fmt.Fprintf(stdout, "replayed %d frames over %v\n", trace.Len(), dur.Round(time.Millisecond))
	report()
	return checkExpectations(stdout, expected, fired)
}

// parseExpect parses the -expect syntax: comma-separated oracle=NAME
// assertions.
func parseExpect(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != "oracle" || v == "" {
			return nil, fmt.Errorf("bad -expect clause %q (want oracle=NAME)", part)
		}
		names = append(names, v)
	}
	return names, nil
}

// checkExpectations reports each expected oracle and fails the run when
// one never fired — the exit status a CI pipeline keys on.
func checkExpectations(stdout io.Writer, expected []string, fired map[string]bool) error {
	var missed []string
	for _, name := range expected {
		if fired[name] {
			fmt.Fprintf(stdout, "expectation met: oracle %q fired\n", name)
		} else {
			fmt.Fprintf(stdout, "expectation MISSED: oracle %q never fired\n", name)
			missed = append(missed, name)
		}
	}
	if len(missed) > 0 {
		return fmt.Errorf("replay did not reproduce: oracle(s) %s never fired",
			strings.Join(missed, ", "))
	}
	return nil
}

// runDemo records a legitimate app unlock on one bench, then replays the
// captured frames into a second, locked bench.
func runDemo(stdout io.Writer) error {
	// Session 1: record the legitimate unlock.
	sched1 := clock.New()
	bench1 := testbench.New(sched1, testbench.Config{AckUnlock: true})
	rec := capture.NewRecorder(bench1.Bus, 0)
	if err := bench1.HeadUnit.AppUnlock(testbench.AppToken); err != nil {
		return err
	}
	sched1.RunUntil(time.Second)
	fmt.Fprintf(stdout, "session 1: recorded %d frames; doors unlocked=%v\n",
		rec.Trace().Len(), bench1.BCM.Unlocked())

	// Session 2: a fresh, locked bench. The attacker replays the capture
	// without knowing what any frame means.
	sched2 := clock.New()
	bench2 := testbench.New(sched2, testbench.Config{})
	port := bench2.AttachFuzzer("replayer")
	dur := capture.Replay(sched2, port, rec.Trace())
	sched2.RunUntil(dur + time.Second)
	fmt.Fprintf(stdout, "session 2: replayed capture; doors unlocked=%v (no freshness in the command)\n",
		bench2.BCM.Unlocked())
	return nil
}
