// Command benchperf is the performance-regression harness for the hot
// path. It runs the repository's headline macro-workloads (campaign,
// campaign+telemetry, fleet) and the hot-path micro-workloads (bit
// stuffing, wire-length computation, frame encoding, scheduler cycle,
// steady-state bus TX, guided campaign step) through testing.Benchmark,
// then writes a BENCH_<date>.json trajectory file with ns/op, allocs/op,
// B/op and — for the frame-pumping workloads — frames/sec.
//
// Usage:
//
//	benchperf [-quick] [-out BENCH_2006-01-02.json]
//	benchperf -quick -baseline testdata/bench_baseline.json [-tolerance 0.15]
//	benchperf -only Campaign,Fleet -speedup-baseline BENCH_2026-08-05.json
//
// With -baseline the run compares against a committed baseline and exits
// non-zero when any shared workload regresses by more than the tolerance
// band in ns/op or increases at all in allocs/op. CI runs the -quick set
// on every push.
//
// With -speedup-baseline the run instead proves a floor against a
// *historical* trajectory file: Campaign frames/sec must be at least
// -min-campaign-speedup (default 3x) the old number and Fleet allocs/op
// must be reduced by at least -min-fleet-alloc-reduction (default 5x).
// This pins the world-reuse + word-codec optimization gains so a revert
// cannot slip through even if it passes the drift gate. The speedup
// comparison must run at the same workload shape as its baseline — the
// committed BENCH_2026-08-05.json is a full (non -quick) run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/can"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/findings"
	"repro/internal/fleet"
	"repro/internal/guided"
	"repro/internal/telemetry"
	"repro/internal/testbench"
)

// logger is the shared structured stderr logger of the tool.
var logger = telemetry.NewCLILogger(os.Stderr, "benchperf", slog.LevelInfo)

// Result is one workload's measurement in the trajectory file.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// FramesPerSec is the real-time frame throughput for workloads that
	// pump frames (campaign, fleet, bus TX); zero elsewhere.
	FramesPerSec float64 `json:"framesPerSec,omitempty"`
}

// File is the shape of a BENCH_<date>.json emission.
type File struct {
	Date       string `json:"date"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	// FindingsCount is the size of the regression corpus (-findings-db) at
	// snapshot time — deduplicated findings, not raw campaign hits — so the
	// trend report shows discovery progress alongside performance.
	FindingsCount int      `json:"findingsCount,omitempty"`
	Results       []Result `json:"results"`
}

// workload pairs a benchmark body with the number of frames one op pumps
// (0 when frames/sec is not a meaningful metric for it).
type workload struct {
	name        string
	framesPerOp float64
	bench       func(b *testing.B)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchperf", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "trim the fleet workload for CI")
	out := fs.String("out", "", "output path (default BENCH_<date>.json; empty with -baseline writes nothing)")
	baseline := fs.String("baseline", "", "baseline BENCH json to compare against")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional ns/op regression vs baseline")
	speedupBaseline := fs.String("speedup-baseline", "", "historical BENCH json the speedup gate measures against")
	minCampaignSpeedup := fs.Float64("min-campaign-speedup", 3.0, "required Campaign frames/sec multiple vs -speedup-baseline")
	minFleetAllocReduction := fs.Float64("min-fleet-alloc-reduction", 5.0, "required Fleet allocs/op reduction factor vs -speedup-baseline")
	reps := fs.Int("reps", 3, "runs per workload; the fastest is kept (noise floor)")
	only := fs.String("only", "", "comma-separated workload names to run (default all)")
	findingsDB := fs.String("findings-db", "", "findings database directory; its record count is stamped into the snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		*reps = 1
	}

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	if *findingsDB != "" {
		db, err := findings.Open(*findingsDB)
		if err != nil {
			return err
		}
		recs, err := db.Load()
		if err != nil {
			return err
		}
		f.FindingsCount = len(recs)
		logger.Info("findings corpus", "db", *findingsDB, "records", f.FindingsCount)
	}
	var want map[string]bool
	if *only != "" {
		want = make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	for _, w := range workloads(*quick) {
		if want != nil && !want[w.name] {
			continue
		}
		logger.Info("running", "workload", w.name)
		res := testing.Benchmark(w.bench)
		// Keep the fastest of -reps runs: the minimum is the scheduling-noise
		// floor, which is what a regression gate should compare.
		for rep := 1; rep < *reps; rep++ {
			if alt := testing.Benchmark(w.bench); nsPerOp(alt) < nsPerOp(res) {
				res = alt
			}
		}
		r := Result{
			Name:        w.name,
			NsPerOp:     nsPerOp(res),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if w.framesPerOp > 0 && r.NsPerOp > 0 {
			r.FramesPerSec = w.framesPerOp * 1e9 / r.NsPerOp
		}
		logger.Info("result", "workload", w.name,
			"ns/op", fmt.Sprintf("%.0f", r.NsPerOp),
			"allocs/op", r.AllocsPerOp, "B/op", r.BytesPerOp)
		f.Results = append(f.Results, r)
	}

	path := *out
	if path == "" && *baseline == "" && *speedupBaseline == "" {
		path = "BENCH_" + f.Date + ".json"
	}
	if path != "" {
		buf, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		logger.Info("wrote trajectory", "path", path)
	}

	if *baseline != "" {
		if err := compare(f, *baseline, *tolerance); err != nil {
			return err
		}
	}
	if *speedupBaseline != "" {
		return checkSpeedup(f, *speedupBaseline, *minCampaignSpeedup, *minFleetAllocReduction)
	}
	return nil
}

// checkSpeedup enforces the world-reuse + word-codec acceptance floor
// against a historical trajectory file: Campaign frames/sec must be at
// least minCampaign times the old number, and Fleet allocs/op must have
// shrunk by at least minFleetAlloc times. Unlike compare, which guards
// against backsliding from the current baseline, this gate proves the
// optimization work actually landed — reverting it fails CI even if the
// revert is self-consistent.
func checkSpeedup(f File, baselinePath string, minCampaign, minFleetAlloc float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read speedup baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse speedup baseline: %w", err)
	}
	find := func(f File, name string) (Result, error) {
		for _, r := range f.Results {
			if r.Name == name {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("workload %q missing from speedup comparison", name)
	}

	failures := 0
	oldC, err := find(base, "Campaign")
	if err != nil {
		return err
	}
	newC, err := find(f, "Campaign")
	if err != nil {
		return err
	}
	if oldC.FramesPerSec <= 0 || newC.FramesPerSec <= 0 {
		return fmt.Errorf("campaign frames/sec missing (old %.0f, new %.0f)", oldC.FramesPerSec, newC.FramesPerSec)
	}
	speedup := newC.FramesPerSec / oldC.FramesPerSec
	if speedup < minCampaign {
		failures++
		logger.Error("campaign speedup below floor",
			"old frames/sec", fmt.Sprintf("%.0f", oldC.FramesPerSec),
			"now frames/sec", fmt.Sprintf("%.0f", newC.FramesPerSec),
			"speedup", fmt.Sprintf("%.2fx", speedup), "floor", fmt.Sprintf("%.1fx", minCampaign))
	} else {
		logger.Info("campaign speedup holds",
			"speedup", fmt.Sprintf("%.2fx", speedup), "floor", fmt.Sprintf("%.1fx", minCampaign))
	}

	oldF, err := find(base, "Fleet")
	if err != nil {
		return err
	}
	newF, err := find(f, "Fleet")
	if err != nil {
		return err
	}
	if oldF.AllocsPerOp <= 0 {
		return fmt.Errorf("fleet allocs/op missing from speedup baseline")
	}
	reduction := float64(oldF.AllocsPerOp) / float64(max(newF.AllocsPerOp, 1))
	if reduction < minFleetAlloc {
		failures++
		logger.Error("fleet alloc reduction below floor",
			"old allocs/op", oldF.AllocsPerOp, "now allocs/op", newF.AllocsPerOp,
			"reduction", fmt.Sprintf("%.2fx", reduction), "floor", fmt.Sprintf("%.1fx", minFleetAlloc))
	} else {
		logger.Info("fleet alloc reduction holds",
			"reduction", fmt.Sprintf("%.2fx", reduction), "floor", fmt.Sprintf("%.1fx", minFleetAlloc))
	}

	if failures > 0 {
		return fmt.Errorf("%d speedup floor(s) not met vs %s", failures, baselinePath)
	}
	return nil
}

// nsPerOp returns the benchmark's wall time per operation in nanoseconds.
func nsPerOp(res testing.BenchmarkResult) float64 {
	if res.N <= 0 {
		return 0
	}
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// compare checks every workload shared with the baseline: ns/op may drift
// up to the tolerance band, allocs/op at most 2% (zero for zero-alloc
// workloads).
func compare(f File, baselinePath string, tolerance float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}

	regressions := 0
	for _, r := range f.Results {
		b, ok := byName[r.Name]
		if !ok {
			logger.Info("no baseline entry; skipping", "workload", r.Name)
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = r.NsPerOp/b.NsPerOp - 1
		}
		// 2% slack absorbs goroutine-scheduling jitter in the parallel fleet
		// workload; it is exactly zero for the zero-alloc hot paths, and a
		// real per-frame leak shifts allocs/op by orders of magnitude more.
		allocSlack := b.AllocsPerOp / 50
		switch {
		case r.AllocsPerOp > b.AllocsPerOp+allocSlack:
			regressions++
			logger.Error("allocs/op regression", "workload", r.Name,
				"baseline", b.AllocsPerOp, "now", r.AllocsPerOp)
		case ratio > tolerance:
			regressions++
			logger.Error("ns/op regression", "workload", r.Name,
				"baseline", fmt.Sprintf("%.0f", b.NsPerOp),
				"now", fmt.Sprintf("%.0f", r.NsPerOp),
				"drift", fmt.Sprintf("%+.1f%%", ratio*100))
		default:
			logger.Info("within band", "workload", r.Name,
				"drift", fmt.Sprintf("%+.1f%%", ratio*100),
				"allocs/op", r.AllocsPerOp)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d workload(s) regressed beyond the %.0f%% band", regressions, tolerance*100)
	}
	logger.Info("all workloads within the regression band", "tolerance", tolerance)
	return nil
}

// workloads returns the benchmark set. quick trims the fleet trial count
// so the CI gate finishes fast; the micro set is cheap either way.
func workloads(quick bool) []workload {
	fleetTrials := 12
	if quick {
		fleetTrials = 4
	}
	return []workload{
		{name: "Campaign", framesPerOp: 1000, bench: func(b *testing.B) {
			benchCampaign(b, nil)
		}},
		{name: "CampaignTelemetry", framesPerOp: 1000, bench: func(b *testing.B) {
			benchCampaign(b, telemetry.New(0))
		}},
		{name: "Fleet", bench: benchFleet(fleetTrials)},
		{name: "GuidedStep", framesPerOp: 1, bench: benchGuidedStep},
		{name: "BusTx", framesPerOp: 1, bench: benchBusTx},
		{name: "ClockScheduleFire", bench: benchClock},
		{name: "Stuff", bench: benchStuff},
		{name: "WireBits", bench: benchWireBits},
		{name: "AppendEncodeBits", bench: benchAppendEncodeBits},
		{name: "Unstuff", bench: benchUnstuff},
		{name: "CRC15", bench: benchCRC15},
		{name: "FDCRC", bench: benchFDCRC},
		{name: "WorldReset", bench: benchWorldReset},
	}
}

// benchCampaign mirrors the root BenchmarkCampaign(-Telemetry) workload:
// one virtual second of blind bench fuzzing at a 1 ms interval, ~1000
// frames per op, on a world built once and recycled with the reset
// machinery — the fleet's pooled fast path.
func benchCampaign(b *testing.B, tel *telemetry.Telemetry) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	bench.Instrument(tel)
	var opts []core.Option
	if tel != nil {
		opts = append(opts, core.WithTelemetry(tel))
	}
	campaign, err := core.NewCampaign(sched, bench.AttachFuzzer("fuzzer"), core.Config{
		Seed: 7, Interval: time.Millisecond,
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	campaign.AddOracle(bench.UnlockOracle())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Reset()
		tel.Reset()
		bench.Reset()
		campaign.Reset(7)
		campaign.Start()
		sched.RunUntil(time.Second)
		campaign.Stop()
	}
}

// benchFleet mirrors the root BenchmarkFleet workload at NumCPU workers,
// with a world pool carrying reset-capable worlds across ops so trials
// recycle instead of rebuilding.
func benchFleet(trials int) func(b *testing.B) {
	return func(b *testing.B) {
		pool := &fleet.WorldPool{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := fleet.Run(fleet.Config{
				Trials:      trials,
				Workers:     runtime.NumCPU(),
				BaseSeed:    100,
				MaxPerTrial: 12 * time.Hour,
				Pool:        pool,
			}, func(spec fleet.TrialSpec) (*fleet.World, error) {
				exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{Seed: spec.Seed})
				if err != nil {
					return nil, err
				}
				return &fleet.World{
					Sched:    exp.Bench.Scheduler(),
					Campaign: exp.Campaign,
					Reset:    func(ts fleet.TrialSpec) error { exp.Reset(ts.Seed); return nil },
				}, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGuidedStep measures one warm 1 ms tick of a guided campaign —
// harvest, novelty bucketing, mutation, TX and the world's reactions.
func benchGuidedStep(b *testing.B) {
	sched := clock.New()
	bench := testbench.New(sched, testbench.Config{AckUnlock: true})
	port := bench.AttachFuzzer("fuzzer")
	cfg := core.Config{Seed: 11, Mode: core.ModeGuided, Interval: time.Millisecond}
	engine, err := guided.NewEngine(cfg, guided.WithProbes(bench.GuidedProbes(port)...))
	if err != nil {
		b.Fatal(err)
	}
	campaign, err := core.NewCampaign(sched, port, cfg, core.WithFrameSource(engine))
	if err != nil {
		b.Fatal(err)
	}
	campaign.Start()
	defer campaign.Stop()
	sched.RunFor(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunFor(time.Millisecond)
	}
}

// benchBusTx measures the warm steady-state transmit path: enqueue,
// arbitrate, wire-time encode, pooled completion, delivery.
func benchBusTx(b *testing.B) {
	sched := clock.New()
	bs := bus.New(sched)
	tx := bs.Connect("fuzzer")
	rx := bs.Connect("ecu")
	rx.SetReceiver(func(bus.Message) {})
	f := can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	step := bs.FrameTime(f)
	for i := 0; i < 32; i++ {
		if err := tx.Send(f); err != nil {
			b.Fatal(err)
		}
		sched.RunFor(step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(f); err != nil {
			b.Fatal(err)
		}
		sched.RunFor(step)
	}
}

// benchClock measures the warm schedule+fire cycle of the event scheduler.
func benchClock(b *testing.B) {
	s := clock.New()
	fn := func() {}
	for i := 0; i < 16; i++ {
		s.AfterEvent(time.Millisecond, fn)
	}
	for s.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterEvent(time.Millisecond, fn)
		s.Step()
	}
}

// benchStuff measures bit stuffing of one typical frame's raw bits.
func benchStuff(b *testing.B) {
	bits := can.RawBits(can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20}))
	dst := make([]byte, 0, len(bits)+len(bits)/5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = can.AppendStuff(dst[:0], bits)
	}
}

// benchWireBits measures the zero-alloc stuffed wire-length computation.
func benchWireBits(b *testing.B) {
	f := can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = can.WireBits(f)
	}
	_ = n
}

// benchAppendEncodeBits measures the scratch-buffer frame encoder.
func benchAppendEncodeBits(b *testing.B) {
	f := can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})
	dst := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = can.AppendEncodeBits(dst[:0], f)
	}
}

// benchUnstuff measures the word-level destuffing kernel on one typical
// frame's stuffed wire bits.
func benchUnstuff(b *testing.B) {
	stuffed := can.Stuff(can.RawBits(can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20})))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := can.Unstuff(stuffed); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCRC15 measures the byte-table CRC-15 over one typical frame's raw
// bits.
func benchCRC15(b *testing.B) {
	bits := can.RawBits(can.MustNew(0x215, []byte{0x20, 0x5F, 1, 0, 0, 1, 0x20}))
	b.ReportAllocs()
	b.ResetTimer()
	var crc uint16
	for i := 0; i < b.N; i++ {
		crc = can.CRC15(bits)
	}
	_ = crc
}

// benchFDCRC measures the CAN FD CRC-17/21 word kernel over a 64-byte
// payload.
func benchFDCRC(b *testing.B) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 37)
	}
	f := can.MustNewFD(0x215, data, true)
	b.ReportAllocs()
	b.ResetTimer()
	var crc uint32
	for i := 0; i < b.N; i++ {
		crc, _ = can.FDCRC(f)
	}
	_ = crc
}

// benchWorldReset measures recycling a dirtied unlock world back to a
// pristine seeded state — the cost the fleet pays per trial instead of a
// factory build.
func benchWorldReset(b *testing.B) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
		Seed:      5,
		TargetIDs: []can.ID{0x215},
		Interval:  time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := exp.Run(30 * time.Minute); !ok {
		b.Fatal("campaign found no unlock within 30 virtual minutes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Reset(5)
	}
}
