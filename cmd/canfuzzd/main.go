// Command canfuzzd is the long-lived campaign service: a single daemon
// that owns a directory of fuzzing campaigns and schedules a shared,
// campaign-agnostic worker fleet across all of them with weighted
// fair-share round-robin.
//
// Clients submit work with `canfuzz -submit http://daemon:9090` (one
// campaign per invocation, same flags as a local run), watch it with
// `canfuzz -status URL`, and read final reports from
// /campaigns/{id}/report.json — byte-identical to what an in-process
// `fleet.Run` of the same spec would print. Workers attach with
// `canfuzz -worker http://daemon:9090` and survive any number of
// campaigns. Kill the daemon at any point and `canfuzzd -resume -data D`
// continues every campaign from its journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campsrv"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "canfuzzd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("canfuzzd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address for the campaign API")
	dataDir := fs.String("data", "", "durable data directory: index.json plus one journal directory per campaign (required)")
	resume := fs.Bool("resume", false, "reload an existing -data directory and continue its campaigns")
	authToken := fs.String("auth-token", "", "shared secret; when set every request (except /healthz) must send 'Authorization: Bearer <token>'")
	leaseTTL := fs.Duration("lease-ttl", 0, "worker lease deadline for every campaign (default 30s)")
	maxActive := fs.Int("max-active", 0, "cap on concurrently running campaigns; excess submissions queue (0 = unlimited)")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace: how long to keep answering workers after SIGINT/SIGTERM")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	findingsDB := fs.String("findings-db", "", "findings database directory; every completed campaign's findings are merged into it (replay with canregress)")
	logFlags := telemetry.RegisterLogFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	logger, err := logFlags.Logger(os.Stderr, "canfuzzd")
	if err != nil {
		return err
	}

	tel := telemetry.New(0)
	srv, err := campsrv.New(campsrv.Config{
		DataDir:    *dataDir,
		Resume:     *resume,
		LeaseTTL:   *leaseTTL,
		MaxActive:  *maxActive,
		Telemetry:  tel,
		Logger:     logger,
		FindingsDB: *findingsDB,
	})
	if err != nil {
		return err
	}

	handler := srv.Handler(campsrv.HandlerConfig{AuthToken: *authToken, Pprof: *pprofOn})
	httpSrv, bound, err := telemetry.ServeHandler(*addr, handler)
	if err != nil {
		return fmt.Errorf("campaign API endpoint: %w", err)
	}
	logger.Info("campaign service up", "addr", bound, "data", *dataDir,
		"resume", *resume, "auth", *authToken != "", "max_active", *maxActive,
		"routes", "/campaigns /campaigns/{id}{,/report.json,/events,/cancel} /fleet.json /campaignd/{spec,lease,heartbeat,result} /metrics")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	// Orderly shutdown: tell lease polls "done" so workers exit, keep the
	// API answering for the grace window, then persist and finalise. The
	// journals make this safe at any point — even SIGKILL skips straight to
	// the -resume path with nothing lost beyond a torn tail line.
	logger.Info("signal received; draining workers", "grace", *grace)
	srv.BeginShutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	<-drainCtx.Done()
	telemetry.Shutdown(httpSrv, time.Second)
	if err := srv.Close(); err != nil {
		return err
	}
	logger.Info("campaign service stopped")
	return nil
}
