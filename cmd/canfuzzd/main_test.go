package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunErrors(t *testing.T) {
	empty := t.TempDir()
	populated := t.TempDir()
	if err := os.WriteFile(filepath.Join(populated, "index.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                          // -data required
		{"-data", empty, "extra"},   // positional args rejected
		{"-data", empty, "-resume"}, // resume needs existing state
		{"-data", populated},        // fresh start refuses populated dir
		{"-data", empty, "-log-level", "loud"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
