package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAddLogThenRun is the CLI round trip: store a minimized trigger log
// as a finding, then replay the database and require a clean pass.
func TestAddLogThenRun(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db")
	log := filepath.Join(dir, "repro.log")
	// The minimized unlock reproducer (byte-only parser).
	if err := os.WriteFile(log, []byte("(0.001000) body0 215#20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"add", "-db", db, "-log", log, "-oracle", "unlock-ack",
		"-campaign", "cli-test"}); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := run([]string{"run", "-db", db}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Idempotent: re-adding the same log must not error or duplicate.
	if err := run([]string{"add", "-db", db, "-log", log, "-oracle", "unlock-ack"}); err != nil {
		t.Fatalf("re-add: %v", err)
	}
	entries, err := os.ReadDir(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("re-add duplicated the finding: %d files", len(entries))
	}
}

// TestRunFailsOnSilencedOracle: a trigger that no longer reproduces makes
// the suite exit non-zero — the whole point of the tool.
func TestRunFailsOnSilencedOracle(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db")
	log := filepath.Join(dir, "noop.log")
	// An inert frame: replays fine, never unlocks anything.
	if err := os.WriteFile(log, []byte("(0.001000) body0 300#FF\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"add", "-db", db, "-log", log, "-oracle", "unlock-ack"}); err != nil {
		t.Fatalf("add: %v", err)
	}
	err := run([]string{"run", "-db", db})
	if err == nil {
		t.Fatal("suite with a silenced oracle succeeded")
	}
	if !strings.Contains(err.Error(), "regression suite failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"add", "-db", t.TempDir()}, // nothing to merge
		{"add", "-log", "x.log"},    // no -db
		{"add", "-db", t.TempDir(), "-log", "x.log"}, // -log without -oracle
		{"run"},                      // no -db
		{"run", "-db", t.TempDir()},  // empty database
		{"diff", "-a", "", "-b", ""}, // no -db for replay sides
		{"diff", "-db", t.TempDir(), "-a", "/nope.json"}, // side is neither file nor overrides
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
