// Command canregress is the regression side of the findings pipeline
// (DESIGN §14): it maintains the deduplicated findings database and
// replays it against the current tree.
//
//	canregress add  -db DIR [sources...]   merge findings into the database
//	canregress run  -db DIR                replay every finding, assert oracles
//	canregress diff -db DIR -a ... -b ...  compare two configurations
//
// Sources for add: fleet report files (canfuzz -json output, positional
// arguments, with -target/-check/... naming the world they ran against),
// a campaign service or coordinator data directory (-campaigns), and a
// canreplay-compatible trigger log (-log, with -oracle naming the oracle
// it reproduces).
//
// run exits non-zero when any finding fails or errors — a silenced oracle
// is a regression. diff replays the corpus under two configurations (a
// saved report file, or an override list like "check=length"; empty means
// the record's own context) and prints every behavioural divergence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/findings"
	"repro/internal/fleet"
	"repro/internal/target"
	"repro/internal/telemetry"
)

var logger = telemetry.NewCLILogger(os.Stderr, "canregress", slog.LevelInfo)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "canregress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: canregress add|run|diff [flags]")
	}
	switch args[0] {
	case "add":
		return runAdd(args[1:])
	case "run":
		return runRun(args[1:])
	case "diff":
		return runDiff(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want add, run or diff)", args[0])
	}
}

// runAdd merges findings from the given sources into the database.
func runAdd(args []string) error {
	fs := flag.NewFlagSet("canregress add", flag.ContinueOnError)
	dbDir := fs.String("db", "", "findings database directory (required)")
	campaignsDir := fs.String("campaigns", "", "campaign service/coordinator data directory to scan (one journal per campaign subdirectory)")
	logFile := fs.String("log", "", "canreplay-compatible trigger log to store as one finding (requires -oracle)")
	oracleName := fs.String("oracle", "", "oracle the -log trigger reproduces")
	detail := fs.String("detail", "", "finding detail for the -log trigger")
	targetName := fs.String("target", "bench", "target world for -log triggers and report files: bench, cluster or vehicle")
	busName := fs.String("bus", "body", "vehicle bus for -log triggers and report files")
	check := fs.String("check", "byte", "bench BCM unlock check for -log triggers and report files: byte, length or twobytes")
	recovery := fs.Bool("recover", false, "findings were observed with the resilience policy armed")
	interval := fs.Duration("interval", time.Millisecond, "trigger playback interval")
	mode := fs.String("mode", "", "generation mode provenance (random, mutate, sweep, guided)")
	campaignID := fs.String("campaign", "", "campaign identifier provenance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbDir == "" {
		return fmt.Errorf("add: -db is required")
	}
	if (*logFile == "") != (*oracleName == "") {
		return fmt.Errorf("add: -log and -oracle go together")
	}
	if _, err := target.ParseCheckMode(*check); err != nil {
		return err
	}
	reports := fs.Args()
	if *campaignsDir == "" && *logFile == "" && len(reports) == 0 {
		return fmt.Errorf("add: nothing to merge (give report files, -campaigns or -log)")
	}

	db, err := findings.Open(*dbDir)
	if err != nil {
		return err
	}
	ctx := findings.Context{
		Target:   *targetName,
		Bus:      *busName,
		BCMCheck: *check,
		Recovery: *recovery,
	}

	var recs []findings.Record
	for _, path := range reports {
		sub, err := recordsFromReportFile(path, ctx, *interval, *mode)
		if err != nil {
			return fmt.Errorf("add %s: %w", path, err)
		}
		logger.Info("report scanned", "file", path, "findings", len(sub))
		recs = append(recs, sub...)
	}
	if *campaignsDir != "" {
		sub, err := findings.FromDataDir(*campaignsDir)
		if err != nil {
			return fmt.Errorf("add -campaigns %s: %w", *campaignsDir, err)
		}
		logger.Info("campaign directory scanned", "dir", *campaignsDir, "findings", len(sub))
		recs = append(recs, sub...)
	}
	if *logFile != "" {
		rec, err := recordFromTriggerLog(*logFile, *oracleName, *detail, ctx, *interval,
			findings.Provenance{Source: "canregress-add", Campaign: *campaignID, Mode: *mode, ReplayLog: *logFile})
		if err != nil {
			return fmt.Errorf("add -log %s: %w", *logFile, err)
		}
		recs = append(recs, rec)
	}
	if *campaignID != "" {
		for i := range recs {
			if len(recs[i].Campaigns) == 0 {
				recs[i].Campaigns = []string{*campaignID}
			}
		}
	}

	fresh, err := db.MergeAll(recs)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d finding(s): %d new, %d deduplicated\n", len(recs), fresh, len(recs)-fresh)
	return nil
}

// recordsFromReportFile extracts records from a fleet report JSON file
// (canfuzz -trials N -json output).
func recordsFromReportFile(path string, ctx findings.Context, interval time.Duration, mode string) ([]findings.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := fleet.ReadReport(f)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Interval: interval}
	prov := findings.Provenance{Source: "canregress-add", Mode: mode}
	return findings.FromFleetReport(rep, ctx, cfg, prov), nil
}

// recordFromTriggerLog converts a canreplay-compatible capture log (the
// minimizer's -minimize-out artefact) into a trigger record.
func recordFromTriggerLog(path, oracleName, detail string, ctx findings.Context, interval time.Duration, prov findings.Provenance) (findings.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return findings.Record{}, err
	}
	defer f.Close()
	trace, err := capture.ParseLog(f)
	if err != nil {
		return findings.Record{}, err
	}
	var frames []string
	for _, r := range trace.Records() {
		frames = append(frames, core.FormatCorpusFrame(r.Frame))
	}
	if len(frames) == 0 {
		return findings.Record{}, fmt.Errorf("log holds no frames")
	}
	return findings.FromTrigger(oracleName, detail, frames, ctx, 0, interval, prov), nil
}

// runRun replays the database and reports per-finding outcomes.
func runRun(args []string) error {
	fs := flag.NewFlagSet("canregress run", flag.ContinueOnError)
	dbDir := fs.String("db", "", "findings database directory (required)")
	targetName := fs.String("target", "", "replay only records of this target (empty: all)")
	workers := fs.Int("workers", 1, "replay concurrency (report bytes are identical at any count)")
	attempts := fs.Int("attempts", 2, "replays per finding (same seed; >1 catches nondeterminism as flaky)")
	override := fs.String("override", "", `context overrides, e.g. "check=length,recovery=true,bus=powertrain"`)
	jsonOut := fs.Bool("json", false, "write the suite report as JSON to stdout")
	outFile := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := replaySuite(*dbDir, *targetName, *workers, *attempts, *override)
	if err != nil {
		return err
	}
	if *outFile != "" {
		if err := writeReportFile(*outFile, rep); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		printSuite(rep)
	}
	if !rep.OK() {
		return fmt.Errorf("regression suite failed: %d fail, %d error of %d finding(s)",
			rep.Fail, rep.Errors, rep.Records)
	}
	return nil
}

// replaySuite loads, filters and replays the database.
func replaySuite(dbDir, targetName string, workers, attempts int, override string) (*findings.SuiteReport, error) {
	if dbDir == "" {
		return nil, fmt.Errorf("-db is required")
	}
	ov, err := findings.ParseOverrides(override)
	if err != nil {
		return nil, err
	}
	db, err := findings.Open(dbDir)
	if err != nil {
		return nil, err
	}
	recs, err := db.Load()
	if err != nil {
		return nil, err
	}
	if targetName != "" {
		kept := recs[:0]
		for _, r := range recs {
			if r.Target == targetName {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("database %s holds no matching findings", dbDir)
	}
	return findings.RunSuite(recs, findings.SuiteConfig{
		Workers:   workers,
		Attempts:  attempts,
		Overrides: ov,
	}), nil
}

// runDiff replays the corpus under two configurations and prints the
// behavioural divergences.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("canregress diff", flag.ContinueOnError)
	dbDir := fs.String("db", "", "findings database directory (required unless both sides are report files)")
	sideA := fs.String("a", "", `side A: a saved canregress report file, or overrides like "check=length" ("" = the records' own context)`)
	sideB := fs.String("b", "", `side B: same forms as -a`)
	workers := fs.Int("workers", 1, "replay concurrency")
	attempts := fs.Int("attempts", 1, "replays per finding per side")
	jsonOut := fs.Bool("json", false, "write divergences as JSON to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repA, err := diffSide(*dbDir, *sideA, *workers, *attempts)
	if err != nil {
		return fmt.Errorf("diff -a: %w", err)
	}
	repB, err := diffSide(*dbDir, *sideB, *workers, *attempts)
	if err != nil {
		return fmt.Errorf("diff -b: %w", err)
	}
	divs := findings.DiffSuites(repA, repB)
	if *jsonOut {
		return writeJSON(os.Stdout, divs)
	}
	if len(divs) == 0 {
		fmt.Println("no divergence: both configurations behave identically on the stored corpus")
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KEY\tORACLE\tKIND\tDETAIL")
	for _, d := range divs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", d.Key, d.Oracle, d.Kind, d.Detail)
	}
	w.Flush()
	fmt.Printf("%d divergence(s)\n", len(divs))
	return nil
}

// diffSide resolves one -a/-b value: a saved report file is loaded, any
// other value is parsed as overrides and replayed fresh.
func diffSide(dbDir, side string, workers, attempts int) (*findings.SuiteReport, error) {
	if side != "" && !strings.Contains(side, "=") {
		f, err := os.Open(side)
		if err != nil {
			return nil, fmt.Errorf("%q is neither a report file nor key=value overrides: %w", side, err)
		}
		defer f.Close()
		return findings.ReadSuiteReport(f)
	}
	return replaySuite(dbDir, "", workers, attempts, side)
}

// printSuite renders the table reporter.
func printSuite(rep *findings.SuiteReport) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KEY\tTARGET\tORACLE\tOUTCOME\tFIRED\tOBSERVED")
	for _, res := range rep.Results {
		observed := res.ObservedOracle
		if res.Err != "" {
			observed = res.Err
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d/%d\t%s\n",
			res.Key, res.Target, res.Oracle, res.Outcome, res.Fired, res.Attempts, observed)
	}
	w.Flush()
	fmt.Printf("%d finding(s): %d pass, %d fail, %d flaky, %d error\n",
		rep.Records, rep.Pass, rep.Fail, rep.Flaky, rep.Errors)
}

// writeReportFile writes the JSON report to a file.
func writeReportFile(path string, rep *findings.SuiteReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeJSON writes any value as indented JSON.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
