package repro

// Determinism regression goldens guarding the hot-path optimization work:
// the campaign and fleet report JSON for pinned seeds is committed, and
// these tests assert byte-identical output. Any perf change to the clock,
// bus, codec, guided engine or campaign loop must leave these bytes
// untouched — the optimizations may only make the same behaviour faster.
//
// Regenerate (and review the diff!) with:
//
//	go test -run TestDeterminism -update .

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/testbench"
)

// TestDeterminismCampaignReportGolden runs a guided bench-unlock campaign
// at a pinned seed and asserts its report JSON is byte-identical to the
// committed golden. The guided engine exercises every optimized layer at
// once: clock event pooling, bus TX queues, frame encoding, novelty
// hashing and the campaign send loop.
func TestDeterminismCampaignReportGolden(t *testing.T) {
	exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{},
		core.Config{Seed: 101, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exp.Run(30 * time.Minute); !ok {
		t.Fatal("guided campaign found no unlock within 30 virtual minutes")
	}
	rep := exp.Campaign.BuildReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_report_golden.json", buf.Bytes())
}

// unlockFleetFactory is the reusable-world variant of the CI fleet smoke
// factory: the returned world carries a Reset hook, so fleet workers
// recycle it across trials instead of rebuilding.
func unlockFleetFactory(spec fleet.TrialSpec) (*fleet.World, error) {
	exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
		Seed:      spec.Seed,
		TargetIDs: []can.ID{0x215},
		Interval:  time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	return &fleet.World{
		Sched:    exp.Bench.Scheduler(),
		Campaign: exp.Campaign,
		Reset: func(ts fleet.TrialSpec) error {
			exp.Reset(ts.Seed)
			return nil
		},
	}, nil
}

// fleetReportJSON runs a fleet configuration and returns the aggregated
// report as JSON bytes.
func fleetReportJSON(t *testing.T, cfg fleet.Config, factory fleet.TargetFactory) []byte {
	t.Helper()
	rep, err := fleet.Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterminismReuseEquivalence pins the world-reuse fast path to the
// factory-per-trial cold path: the same trial schedule must produce
// byte-identical fleet report JSON with reuse disabled, with per-worker
// reuse, and with a cross-run world pool — at one worker and at full
// width. This is the contract that lets fleet.Run recycle worlds at all:
// a reset world is indistinguishable from a freshly built one.
func TestDeterminismReuseEquivalence(t *testing.T) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := fleet.Config{
			Trials:      8,
			Workers:     workers,
			BaseSeed:    5,
			MaxPerTrial: 30 * time.Minute,
		}

		cold := cfg
		cold.DisableReuse = true
		coldJSON := fleetReportJSON(t, cold, unlockFleetFactory)

		reuseJSON := fleetReportJSON(t, cfg, unlockFleetFactory)
		if !bytes.Equal(coldJSON, reuseJSON) {
			t.Errorf("workers=%d: reuse-on report differs from reuse-off\noff: %s\non:  %s",
				workers, coldJSON, reuseJSON)
		}

		// Two runs sharing a pool: the second run's workers start from
		// worlds the first run parked, so every trial exercises the
		// reset path against state left by a *different* schedule.
		pooled := cfg
		pooled.Pool = &fleet.WorldPool{}
		fleetReportJSON(t, pooled, unlockFleetFactory)
		if pooled.Pool.Len() == 0 {
			t.Fatalf("workers=%d: no worlds parked in pool after run", workers)
		}
		pooledJSON := fleetReportJSON(t, pooled, unlockFleetFactory)
		if !bytes.Equal(coldJSON, pooledJSON) {
			t.Errorf("workers=%d: pooled rerun report differs from reuse-off\noff:    %s\npooled: %s",
				workers, coldJSON, pooledJSON)
		}

		// The schedule matches the committed CI golden; reuse must not
		// perturb those bytes either.
		if workers == runtime.NumCPU() {
			checkGolden(t, "fleet_report_golden.json", reuseJSON)
		}
	}
}

// TestDeterminismResetAfterFinding is the leak check for world reuse: a
// trial that *produces a finding* mutates more state than any other
// (oracle fired flags, stop-on-finding campaign bookkeeping, telemetry
// series, probe maps). Resetting that world and running a second seed
// must yield a report byte-identical to a fresh world's run of the same
// seed — any counter or monitor surviving the reset shows up here.
func TestDeterminismResetAfterFinding(t *testing.T) {
	runJSON := func(e *testbench.UnlockExperiment) []byte {
		t.Helper()
		if _, ok := e.Run(30 * time.Minute); !ok {
			t.Fatal("campaign found no unlock within 30 virtual minutes")
		}
		rep := e.Campaign.BuildReport()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	mk := func(seed int64) *testbench.UnlockExperiment {
		t.Helper()
		exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
			Seed:      seed,
			TargetIDs: []can.ID{0x215},
			Interval:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return exp
	}

	reused := mk(5)
	runJSON(reused) // finding-producing trial: dirties oracles, report state
	reused.Reset(6)
	got := runJSON(reused)

	want := runJSON(mk(6))
	if !bytes.Equal(got, want) {
		t.Errorf("report after reset differs from fresh world\nfresh: %s\nreset: %s", want, got)
	}
}

// TestDeterminismFleetReportGolden runs the 8-trial targeted-unlock fleet
// smoke (the CI configuration: ids 215, seed 5) at full worker width and
// asserts the aggregated report JSON is byte-identical to the committed
// golden. The fleet report is already asserted worker-count independent in
// internal/fleet; this pins the actual bytes across optimization passes.
func TestDeterminismFleetReportGolden(t *testing.T) {
	rep, err := fleet.Run(fleet.Config{
		Trials:      8,
		Workers:     runtime.NumCPU(),
		BaseSeed:    5,
		MaxPerTrial: 30 * time.Minute,
	}, func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
			Seed:      spec.Seed,
			TargetIDs: []can.ID{0x215},
			Interval:  time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoundFindings != 8 {
		t.Fatalf("foundFindings = %d, want 8", rep.FoundFindings)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_report_golden.json", buf.Bytes())
}
