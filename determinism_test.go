package repro

// Determinism regression goldens guarding the hot-path optimization work:
// the campaign and fleet report JSON for pinned seeds is committed, and
// these tests assert byte-identical output. Any perf change to the clock,
// bus, codec, guided engine or campaign loop must leave these bytes
// untouched — the optimizations may only make the same behaviour faster.
//
// Regenerate (and review the diff!) with:
//
//	go test -run TestDeterminism -update .

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/testbench"
)

// TestDeterminismCampaignReportGolden runs a guided bench-unlock campaign
// at a pinned seed and asserts its report JSON is byte-identical to the
// committed golden. The guided engine exercises every optimized layer at
// once: clock event pooling, bus TX queues, frame encoding, novelty
// hashing and the campaign send loop.
func TestDeterminismCampaignReportGolden(t *testing.T) {
	exp, err := testbench.NewGuidedUnlockExperiment(testbench.Config{},
		core.Config{Seed: 101, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exp.Run(30 * time.Minute); !ok {
		t.Fatal("guided campaign found no unlock within 30 virtual minutes")
	}
	rep := exp.Campaign.BuildReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_report_golden.json", buf.Bytes())
}

// TestDeterminismFleetReportGolden runs the 8-trial targeted-unlock fleet
// smoke (the CI configuration: ids 215, seed 5) at full worker width and
// asserts the aggregated report JSON is byte-identical to the committed
// golden. The fleet report is already asserted worker-count independent in
// internal/fleet; this pins the actual bytes across optimization passes.
func TestDeterminismFleetReportGolden(t *testing.T) {
	rep, err := fleet.Run(fleet.Config{
		Trials:      8,
		Workers:     runtime.NumCPU(),
		BaseSeed:    5,
		MaxPerTrial: 30 * time.Minute,
	}, func(spec fleet.TrialSpec) (*fleet.World, error) {
		exp, err := testbench.NewUnlockExperiment(testbench.Config{}, core.Config{
			Seed:      spec.Seed,
			TargetIDs: []can.ID{0x215},
			Interval:  time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return &fleet.World{Sched: exp.Bench.Scheduler(), Campaign: exp.Campaign}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoundFindings != 8 {
		t.Fatalf("foundFindings = %d, want 8", rep.FoundFindings)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_report_golden.json", buf.Bytes())
}
